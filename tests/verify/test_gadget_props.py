"""Tests for gadget colorfulness properties (Claims 4.3 and 4.5)."""

import itertools

from repro.families.gadgets import Gadget
from repro.oracles.brute import proper_colorings
from repro.verify.gadget_props import classify_gadget, colorful_lines, confined_colors


def gadget_lines(k):
    g = Gadget(k)
    rows = [g.row(i) for i in range(k)]
    cols = [g.column(j) for j in range(k)]
    return g, rows, cols


def test_confined_colors_basic():
    g, rows, cols = gadget_lines(2)
    coloring = {(0, 0): 1, (0, 1): 1, (1, 0): 2, (1, 1): 2}
    confined = confined_colors(rows, coloring)
    assert confined == [{1}, {2}]
    assert colorful_lines(rows, coloring) == []
    assert colorful_lines(cols, coloring) == [0, 1]


def test_classify_row_colorful():
    g, rows, cols = gadget_lines(2)
    coloring = {(0, 0): 1, (0, 1): 2, (1, 0): 2, (1, 1): 1}
    assert classify_gadget(rows, cols, coloring) == "both"


def test_claim_4_5_exhaustive_k3():
    """Every proper (2k-2)-coloring of A(3) is exactly one of row- and
    column-colorful (Claim 4.5), checked over ALL 4-colorings."""
    g, rows, cols = gadget_lines(3)
    count = 0
    seen_classes = set()
    for coloring in proper_colorings(g.graph, 4):
        shifted = {node: color + 1 for node, color in coloring.items()}
        verdict = classify_gadget(rows, cols, shifted)
        assert verdict in ("row", "column"), shifted
        seen_classes.add(verdict)
        count += 1
    assert count > 0
    assert seen_classes == {"row", "column"}


def test_claim_4_3_no_color_confined_twice():
    """A color cannot be confined to two rows, nor to a row and a column,
    under any proper 4-coloring of A(3)."""
    g, rows, cols = gadget_lines(3)
    for coloring in proper_colorings(g.graph, 4, limit=2000):
        shifted = {node: color + 1 for node, color in coloring.items()}
        row_confined = confined_colors(rows, shifted)
        col_confined = confined_colors(cols, shifted)
        all_row = list(itertools.chain.from_iterable(row_confined))
        all_col = list(itertools.chain.from_iterable(col_confined))
        assert len(all_row) == len(set(all_row))  # once per color in rows
        assert len(all_col) == len(set(all_col))
        assert not (set(all_row) & set(all_col))


def test_k_coloring_is_row_and_column_constrained():
    """With only k colors a gadget coloring colors each row
    monochromatically or each column monochromatically."""
    g, rows, cols = gadget_lines(3)
    for coloring in proper_colorings(g.graph, 3, limit=500):
        shifted = {node: color + 1 for node, color in coloring.items()}
        verdict = classify_gadget(rows, cols, shifted)
        assert verdict in ("row", "column")
