"""Union-find with parity, used to maintain bipartitions incrementally.

Each element carries a parity bit relative to its set's root.  Adding the
constraint "u and v have opposite parity" (an edge of a bipartite graph)
either merges two sets or checks consistency inside one set.  A
contradiction marks the component *odd* (non-bipartite) — the Akbari
algorithm uses this to detect that the adversary's graph fragment cannot
be 2-colored (e.g., an odd row cycle of a torus).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

Element = Hashable


class ParityUnionFind:
    """Disjoint sets with relative parities and odd-component detection."""

    def __init__(self) -> None:
        self._parent: Dict[Element, Element] = {}
        self._parity: Dict[Element, int] = {}
        self._size: Dict[Element, int] = {}
        self._odd: Dict[Element, bool] = {}

    def add(self, element: Element) -> None:
        """Register a new singleton element (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._parity[element] = 0
            self._size[element] = 1
            self._odd[element] = False

    def __contains__(self, element: Element) -> bool:
        return element in self._parent

    def find(self, element: Element) -> Tuple[Element, int]:
        """The root of ``element``'s set and the parity of ``element``
        relative to the root."""
        root = element
        parity = 0
        while self._parent[root] != root:
            parity ^= self._parity[root]
            root = self._parent[root]
        # Path compression, re-deriving parities relative to the root.
        node = element
        carry = parity
        while self._parent[node] != node:
            parent, bit = self._parent[node], self._parity[node]
            self._parent[node] = root
            self._parity[node] = carry
            carry ^= bit
            node = parent
        return root, parity

    def union_opposite(self, u: Element, v: Element) -> Element:
        """Add the constraint ``parity(u) != parity(v)`` (an edge).

        Returns the root of the merged (or existing) set.  If the
        constraint contradicts the current parities, the component is
        marked odd rather than raising — callers inspect :meth:`is_odd`.
        """
        root_u, par_u = self.find(u)
        root_v, par_v = self.find(v)
        if root_u == root_v:
            if par_u == par_v:
                self._odd[root_u] = True
            return root_u
        # Union by size; rebase the smaller root's parity so that
        # parity(u) ^ parity(v) == 1 holds in the merged frame.
        if self._size[root_u] < self._size[root_v]:
            root_u, root_v = root_v, root_u
            par_u, par_v = par_v, par_u
        self._parent[root_v] = root_u
        self._parity[root_v] = par_u ^ par_v ^ 1
        self._size[root_u] += self._size[root_v]
        self._odd[root_u] = self._odd[root_u] or self._odd[root_v]
        return root_u

    def size(self, element: Element) -> int:
        """The size of the set containing ``element``."""
        root, __ = self.find(element)
        return self._size[root]

    def is_odd(self, element: Element) -> bool:
        """Whether the component picked up a parity contradiction."""
        root, __ = self.find(element)
        return self._odd[root]
