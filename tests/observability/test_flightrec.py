"""Tests for the flight recorder: ring semantics, kill-safe dumps,
fault-path tolerance."""

import json
import os

import pytest

from repro.observability.flightrec import (
    FLIGHT,
    DUMP_PREFIX,
    FlightRecorder,
    dump_on_fault,
    find_flight_dumps,
    flight_dump_path,
    read_flight_dump,
)


def test_ring_keeps_most_recent_and_counts_drops():
    rec = FlightRecorder(capacity=3)
    for i in range(5):
        rec.record("tick", i=i)
    assert len(rec) == 3
    assert rec.dropped == 2
    events = rec.events()
    assert [e["i"] for e in events] == [2, 3, 4]
    # Sequence numbers are global, not ring positions.
    assert [e["seq"] for e in events] == [2, 3, 4]
    assert all(e["kind"] == "tick" for e in events)


def test_clear_resets_drops_but_not_sequence():
    rec = FlightRecorder(capacity=2)
    for _ in range(4):
        rec.record("tick")
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0
    rec.record("after")
    assert rec.events()[0]["seq"] == 4


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_dump_round_trip(tmp_path):
    rec = FlightRecorder(capacity=8)
    rec.record("dispatch", worker=0, digest="abc")
    rec.record("worker-died", worker=0, pid=123)
    path = rec.dump(str(tmp_path / "flight-1.jsonl"), reason="lease-expired")

    records = list(read_flight_dump(path))
    header, events = records[0], records[1:]
    assert header["kind"] == "flight-dump"
    assert header["reason"] == "lease-expired"
    assert header["pid"] == os.getpid()
    assert header["events"] == 2 and header["dropped"] == 0
    assert [e["kind"] for e in events] == ["dispatch", "worker-died"]
    assert events[0]["digest"] == "abc"
    # No temp file left behind by the atomic rename.
    assert [p.name for p in tmp_path.iterdir()] == ["flight-1.jsonl"]


def test_read_dump_tolerates_torn_tail(tmp_path):
    path = tmp_path / "flight-x.jsonl"
    path.write_text(
        json.dumps({"kind": "flight-dump", "reason": "r"}) + "\n"
        + json.dumps({"kind": "ok", "seq": 0}) + "\n"
        + '{"kind": "torn", "se',
        encoding="utf-8",
    )
    kinds = [r["kind"] for r in read_flight_dump(str(path))]
    assert kinds == ["flight-dump", "ok"]


def test_dump_on_fault_writes_under_root(tmp_path):
    FLIGHT.clear()
    FLIGHT.record("pool-start", workers=2)
    path = dump_on_fault(str(tmp_path), "pool-degraded", remaining=3)
    assert path == flight_dump_path(str(tmp_path))
    assert find_flight_dumps(str(tmp_path)) == [path]
    records = list(read_flight_dump(path))
    assert records[0]["reason"] == "pool-degraded"
    # The fault itself is the last buffered event, with the fields.
    fault = records[-1]
    assert fault["kind"] == "fault" and fault["remaining"] == 3
    FLIGHT.clear()


def test_dump_on_fault_never_raises(tmp_path):
    # Unset root: records the fault, skips the dump.
    assert dump_on_fault(None, "scheduler-exception") is None
    # Unwritable root: the OSError is swallowed, not propagated.
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file where a directory is needed")
    assert dump_on_fault(str(blocker), "lease-expired") is None
    FLIGHT.clear()


def test_find_flight_dumps_filters_and_sorts(tmp_path):
    for name in (f"{DUMP_PREFIX}20.jsonl", f"{DUMP_PREFIX}10.jsonl",
                 "results.jsonl", "flight-notes.txt"):
        (tmp_path / name).write_text("{}\n")
    found = find_flight_dumps(str(tmp_path))
    assert [os.path.basename(p) for p in found] == [
        f"{DUMP_PREFIX}10.jsonl", f"{DUMP_PREFIX}20.jsonl"
    ]
    assert find_flight_dumps(str(tmp_path / "missing")) == []
