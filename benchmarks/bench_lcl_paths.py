"""Experiment LCL: the intro's path/cycle LCL problems at O(log* n).

MIS and maximal matching on paths/cycles via Cole–Vishkin: round counts
stay flat (log*) while n and the id magnitude grow.
"""

import random


from repro.analysis.tables import render_table
from repro.core.colevishkin import round_bound
from repro.core.lcl_paths import (
    is_maximal_independent_set,
    is_maximal_matching,
    maximal_independent_set,
    maximal_matching,
)


def ids_for(n, bits, seed):
    rng = random.Random(seed)
    pool = set()
    while len(pool) < n:
        pool.add(rng.randrange(2 ** bits))
    return list(pool)


def test_lcl_round_counts_are_log_star_flat():
    rows = []
    for n, bits in ((100, 20), (1000, 30), (5000, 40)):
        ids = ids_for(n, bits, seed=n)
        members, mis_rounds = maximal_independent_set(ids)
        matching, mm_rounds = maximal_matching(ids)
        assert is_maximal_independent_set(members, n, cyclic=False)
        assert is_maximal_matching(matching, n, cyclic=False)
        assert mis_rounds <= round_bound(max(ids)) + 3
        rows.append([n, f"2^{bits}", mis_rounds, mm_rounds])
    print()
    print("LCLs on paths: rounds vs n (log* growth — effectively flat):")
    print(render_table(["n", "id bound", "MIS rounds", "matching rounds"], rows))
    round_counts = [row[2] for row in rows]
    assert max(round_counts) - min(round_counts) <= 2


def test_bench_mis(benchmark):
    ids = ids_for(2000, 40, seed=3)
    members, __ = benchmark(lambda: maximal_independent_set(ids))
    assert is_maximal_independent_set(members, 2000, cyclic=False)


def test_bench_matching(benchmark):
    ids = ids_for(2000, 40, seed=4)
    matching, __ = benchmark(lambda: maximal_matching(ids))
    assert is_maximal_matching(matching, 2000, cyclic=False)
