"""Experiment GKM: SLOCAL-in-LOCAL via network decompositions (intro).

Measures, per instance, the decomposition quality (c, d) and the maximum
dependency radius the LOCAL simulation needs, against the c(d+T)+T
budget — the executable content of the Ghaffari–Kuhn–Maus connection the
paper's introduction builds on.
"""


from repro.analysis.tables import render_table
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_tree
from repro.graphs.decomposition import ball_carving_decomposition, check_decomposition
from repro.models.gkm import GkmSimulation
from repro.models.slocal import SLocalAlgorithm, SLocalView
from repro.verify.coloring import is_proper


class GreedySLocal(SLocalAlgorithm):
    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {view.colors.get(v) for v in view.graph.neighbors(view.center)}
        return min(c for c in range(1, self.num_colors + 1) if c not in used)


CASES = {
    "grid-5x5": lambda: SimpleGrid(5, 5).graph,
    "grid-6x8": lambda: SimpleGrid(6, 8).graph,
    "tree-40": lambda: random_tree(40, seed=2),
}


def measure(name):
    graph = CASES[name]()
    decomposition = ball_carving_decomposition(graph)
    c, d = check_decomposition(graph, decomposition)
    sim = GkmSimulation(graph, decomposition, GreedySLocal(), locality=1, num_colors=5)
    labels = sim.run()
    assert is_proper(graph, labels)
    budget = sim.radius_budget()
    probes = sorted(graph.nodes(), key=repr)[:: max(1, graph.num_nodes // 6)]
    worst = max(sim.dependency_radius(node, max_radius=budget) for node in probes)
    assert worst <= budget
    return [name, graph.num_nodes, c, d, budget, worst]


def test_gkm_dependency_radii():
    rows = [measure(name) for name in sorted(CASES)]
    print()
    print("GKM simulation: measured dependency radius vs the c(d+T)+T budget")
    print(
        render_table(
            ["instance", "n", "c", "d", "budget", "max measured radius"], rows
        )
    )


def test_bench_gkm_emulation(benchmark):
    graph = SimpleGrid(6, 6).graph
    decomposition = ball_carving_decomposition(graph)

    def run():
        sim = GkmSimulation(
            graph, decomposition, GreedySLocal(), locality=1, num_colors=5
        )
        return sim.run()

    labels = benchmark(run)
    assert is_proper(graph, labels)
