"""Experiment analysis: growth-curve fitting and result tables.

The theorems claim asymptotic *shapes* (Θ(log n), Θ(√n), Θ(n)); the
benchmarks measure thresholds across a sweep of n and this package
decides which shape fits best and renders the paper-vs-measured tables
recorded in EXPERIMENTS.md.
"""

from repro.analysis.fitting import FitResult, best_growth_model, fit_growth
from repro.analysis.experiments import ExperimentRecord, threshold_locality
from repro.analysis.tables import render_table

__all__ = [
    "FitResult",
    "best_growth_model",
    "fit_growth",
    "ExperimentRecord",
    "threshold_locality",
    "render_table",
]
