"""Kill-the-server tests: SIGKILL a serving process, restart it over
the same store, and prove the replacement serves the dead server's
work without replaying a single game."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.analysis.store import ResultStore
from repro.api import SubmitRequest

SPEC = {
    "version": 1,
    "kind": "sweep",
    "name": "resume-tiny",
    "adversaries": [{"name": "theorem1-grid"}],
    "victims": ["greedy"],
    "localities": [0, 1],
    "timeout": 10.0,
}


def _spawn_server(store_dir):
    """Start ``repro serve`` on an ephemeral port; returns (proc, port)."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", os.fspath(store_dir), "--port", "0", "--rate", "0"],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()  # "repro-server listening on http://..."
    assert "listening on http://" in line, line
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def _call(port, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_done(port, campaign_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, handle = _call(port, "GET", f"/v1/campaigns/{campaign_id}")
        assert status == 200
        if handle["state"] in ("done", "failed"):
            return handle
        time.sleep(0.1)
    raise AssertionError("campaign did not finish in time")


@pytest.mark.slow
def test_sigkill_server_resume_serves_from_store(tmp_path):
    store_dir = tmp_path / "store"
    submit = {"version": 1, "spec": SPEC}
    campaign_id = SubmitRequest.from_payload(submit).campaign_id()

    # Life 1: submit, let it finish, then SIGKILL the server.
    proc, port = _spawn_server(store_dir)
    try:
        status, handle = _call(port, "POST", "/v1/campaigns", submit)
        assert status == 202 and handle["id"] == campaign_id
        first = _wait_done(port, campaign_id)
        assert first["state"] == "done" and first["played"] == 2
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()

    rows_before = sorted(
        row["spec_hash"] for row in ResultStore(store_dir).rows()
    )
    assert len(rows_before) == 2

    # Life 2: a fresh server over the same store knows the campaign
    # from its manifest ("stored"), and a resubmission replays nothing.
    proc, port = _spawn_server(store_dir)
    try:
        status, handle = _call(port, "GET", f"/v1/campaigns/{campaign_id}")
        assert status == 200
        assert handle["state"] == "stored"
        assert handle["done"] == 2 and handle["total"] == 2

        status, handle = _call(port, "POST", "/v1/campaigns", submit)
        assert status == 202
        second = _wait_done(port, campaign_id)
        assert second["state"] == "done"
        assert second["played"] == 0 and second["deduped"] == 2

        status, page = _call(
            port, "GET", f"/v1/campaigns/{campaign_id}/rows?limit=10"
        )
        assert status == 200
        assert sorted(r["spec_hash"] for r in page["rows"]) == rows_before
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    # The ledger across both lives: one played run, one zero-replay run.
    runs = ResultStore(store_dir).runs()
    assert [run["played"] for run in runs] == [2, 0]
    assert [run["deduped"] for run in runs] == [0, 2]
