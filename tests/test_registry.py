"""Tests for the string-keyed factory registries."""

import pytest

from repro.adversaries.result import AdversaryResult
from repro.registry import (
    ADVERSARIES,
    DEFAULT_ADVERSARIES,
    DEFAULT_VICTIMS,
    FAULTY_VICTIM_NAMES,
    FIXED_VICTIM,
    FixedVictimGame,
    Registry,
    RegistryError,
    adversary_is_fixed,
    get_adversary,
    get_victim,
    list_adversaries,
    list_families,
    list_victims,
    register_adversary,
)


def test_round_trip_register_get_list():
    registry = Registry("widget")
    sentinel = object()
    registry.register("alpha", lambda: sentinel, flavor="test")
    assert "alpha" in registry
    assert registry.get("alpha")() is sentinel
    assert registry.names() == ["alpha"]
    assert registry.metadata("alpha") == {"flavor": "test"}
    registry.register("beta", lambda: None)
    assert registry.names() == ["alpha", "beta"]  # registration order
    assert len(registry) == 2


def test_decorator_registration():
    registry = Registry("widget")

    @registry.register("decorated", fixed_victim=True)
    def factory():
        return 42

    assert registry.get("decorated") is factory
    assert registry.metadata("decorated")["fixed_victim"] is True


def test_duplicate_name_is_an_error():
    registry = Registry("widget")
    registry.register("dup", lambda: 1)
    with pytest.raises(RegistryError, match="already registered"):
        registry.register("dup", lambda: 2)
    # replace=True is the explicit override path.
    registry.register("dup", lambda: 3, replace=True)
    assert registry.get("dup")() == 3


def test_unknown_name_lists_choices():
    registry = Registry("widget")
    registry.register("only", lambda: 1)
    with pytest.raises(RegistryError, match=r"unknown widget 'nope'.*only"):
        registry.get("nope")


def test_unregister():
    registry = Registry("widget")
    registry.register("gone", lambda: 1)
    registry.unregister("gone")
    assert "gone" not in registry
    with pytest.raises(RegistryError):
        registry.unregister("gone")


def test_builtin_portfolios_are_registered():
    for name in DEFAULT_ADVERSARIES:
        assert name in ADVERSARIES
    for name in DEFAULT_VICTIMS + FAULTY_VICTIM_NAMES:
        assert get_victim(name) is not None
    assert set(DEFAULT_ADVERSARIES) <= set(list_adversaries())
    assert set(DEFAULT_VICTIMS) <= set(list_victims())
    assert {"grid", "torus", "cylinder", "triangular"} <= set(list_families())


def test_fixed_victim_metadata():
    assert adversary_is_fixed("theorem5-reduction")
    assert not adversary_is_fixed("theorem1-grid")
    entry = get_adversary("theorem5-reduction")(1)
    assert isinstance(entry, FixedVictimGame)
    assert FIXED_VICTIM == "(fixed)"


def test_builtin_adversary_plays_through_registry():
    entry = get_adversary("theorem1-grid")(1)
    result = entry(get_victim("greedy")())
    assert isinstance(result, AdversaryResult)
    assert result.won


def test_third_party_registration_reaches_sweeps():
    """A registered adversary is resolvable exactly like a builtin."""

    @register_adversary("test-always-wins")
    def _factory(locality, **params):
        return lambda victim: AdversaryResult(
            won=True, reason="rigged", stats={"locality": locality, **params}
        )

    try:
        entry = get_adversary("test-always-wins")(3, bias=1)
        result = entry(get_victim("greedy")())
        assert result.won and result.stats == {"locality": 3, "bias": 1}
    finally:
        ADVERSARIES.unregister("test-always-wins")
