"""Experiment analysis: sweeps, campaigns, fitting, and result tables.

The theorems claim asymptotic *shapes* (Θ(log n), Θ(√n), Θ(n)); the
benchmarks measure thresholds across a sweep of n and this package
decides which shape fits best and renders the paper-vs-measured tables
recorded in EXPERIMENTS.md.

Campaigns (:mod:`repro.analysis.campaign`) scale that up: a declarative
spec expands into a work queue of games drained by a work-stealing
scheduler into a content-addressed result store
(:mod:`repro.analysis.store`), so killed runs resume with zero replayed
games.  The heavyweight campaign symbols are imported lazily — pulling
in :mod:`repro.analysis` for a table helper must not drag in the full
adversary/registry stack.
"""

from repro.analysis.fitting import FitResult, best_growth_model, fit_growth
from repro.analysis.experiments import ExperimentRecord, threshold_locality
from repro.analysis.tables import render_table

__all__ = [
    "FitResult",
    "best_growth_model",
    "fit_growth",
    "ExperimentRecord",
    "threshold_locality",
    "render_table",
    # lazy (see __getattr__)
    "CampaignSpec",
    "ThresholdSearchSpec",
    "run_campaign",
    "run_threshold_search",
    "campaign_status",
    "load_campaign",
    "threshold_table",
    "ResultStore",
    "spec_hash",
]

_LAZY = {
    "CampaignSpec": "repro.analysis.campaign",
    "ThresholdSearchSpec": "repro.analysis.campaign",
    "run_campaign": "repro.analysis.campaign",
    "run_threshold_search": "repro.analysis.campaign",
    "campaign_status": "repro.analysis.campaign",
    "load_campaign": "repro.analysis.campaign",
    "threshold_table": "repro.analysis.campaign",
    "ResultStore": "repro.analysis.store",
    "spec_hash": "repro.analysis.store",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
