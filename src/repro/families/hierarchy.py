"""The duplicate-node hierarchy :math:`G_k` of Section 5.2.

``G_2`` is a simple grid.  ``G_{m+1}`` augments ``G_m`` by adding, for
every node ``u``, a duplicate ``u*`` adjacent to ``u`` and to all of
``u``'s neighbors *in* ``G_m``.  Layer ``H_2`` is the grid; layer
``H_m`` (m >= 3) is the set of duplicates created at step ``m``.

Node labels: grid nodes are ``(2, (i, j))``; the duplicate of node ``v``
created at step ``m`` is ``(m, v)``.  This makes the ancestor maps of the
paper trivial to implement: :math:`\\pi((m, v)) = v` and
:math:`\\pi_\\diamond` iterates down to layer 2.

Structural facts implemented and tested here (Claims 5.3-5.5,
Observations 5.1-5.2):

* ``G_k`` has ``2**(k-2) * rows * cols`` nodes,
* ``G_k`` is k-partite via the canonical coloring (grid bipartition for
  layer 2, layer number otherwise),
* every node lies in a k-clique together with its base ancestor, and
* every k-clique contains exactly two layer-2 nodes and one node from each
  higher layer.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

from repro.families.grids import SimpleGrid
from repro.graphs.graph import Graph

HierNode = Tuple[int, Hashable]


class Hierarchy:
    """The graph :math:`G_k` built over a ``rows x cols`` simple grid.

    Parameters
    ----------
    k:
        The partiteness parameter; ``k = 2`` yields the bare grid.
    rows, cols:
        Dimensions of the base grid ``G_2``.
    """

    def __init__(self, k: int, rows: int, cols: int) -> None:
        if k < 2:
            raise ValueError(f"the hierarchy starts at k = 2, got {k}")
        self.k = k
        self.base = SimpleGrid(rows, cols)
        self.graph = Graph()
        for node in self.base.graph.nodes():
            self.graph.add_node((2, node))
        for u, v in self.base.graph.edges():
            self.graph.add_edge((2, u), (2, v))
        # Augment layer by layer.  `frontier_edges` tracks E(G_m) so that a
        # duplicate connects only to neighbors that existed in G_m.
        for layer in range(3, k + 1):
            existing_nodes = list(self.graph.nodes())
            neighbor_snapshot = {
                node: list(self.graph.neighbors(node)) for node in existing_nodes
            }
            for node in existing_nodes:
                dup = (layer, node)
                self.graph.add_edge(dup, node)
                for nbr in neighbor_snapshot[node]:
                    self.graph.add_edge(dup, nbr)

    # ------------------------------------------------------------------
    # Node structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``2**(k-2) * n`` where ``n`` is the base grid size (Obs. 5.1)."""
        return self.graph.num_nodes

    def layer(self, node: HierNode) -> int:
        """The layer number of ``node`` (2 for grid nodes)."""
        return node[0]

    def layer_nodes(self, layer: int) -> List[HierNode]:
        """All nodes of the given layer ``H_layer``."""
        if not 2 <= layer <= self.k:
            raise IndexError(f"layer {layer} outside [2, {self.k}]")
        return [node for node in self.graph.nodes() if node[0] == layer]

    def parent(self, node: HierNode) -> HierNode:
        """The paper's :math:`\\pi`: the node this duplicate was copied from.

        Raises
        ------
        ValueError
            For layer-2 nodes, which have no parent.
        """
        layer, inner = node
        if layer == 2:
            raise ValueError(f"layer-2 node {node!r} has no parent")
        return inner

    def base_ancestor(self, node: HierNode) -> HierNode:
        """The paper's :math:`\\pi_\\diamond`: iterate parent() into layer 2."""
        current = node
        while current[0] != 2:
            current = self.parent(current)
        return current

    def duplicate(self, node: HierNode, layer: int) -> HierNode:
        """The duplicate of ``node`` created at step ``layer``.

        Only valid when ``node`` already existed in ``G_{layer-1}``, i.e.,
        its own layer is below ``layer``.
        """
        if not node[0] < layer <= self.k:
            raise ValueError(
                f"node {node!r} has no duplicate at layer {layer} (k={self.k})"
            )
        return (layer, node)

    def canonical_color(self, node: HierNode) -> int:
        """The k-coloring of Observation 5.2 (colors ``0 .. k-1``).

        Layer-2 nodes use the grid bipartition (colors 0 and 1); a node of
        layer ``m >= 3`` gets color ``m - 1``.
        """
        layer, inner = node
        if layer == 2:
            return self.base.bipartition_color(inner)
        return layer - 1

    # ------------------------------------------------------------------
    # Clique structure (Claims 5.3-5.5)
    # ------------------------------------------------------------------
    def witness_clique(self, node: HierNode) -> Set[HierNode]:
        """A k-clique containing both ``node`` and its base ancestor.

        Implements the recursive construction in the proof of Claim 5.3:
        if ``node`` lives in the top layer, recurse on its parent and add
        ``node``; otherwise recurse on ``node`` one level down and add
        ``node``'s own duplicate at the current level.
        """
        return self._witness_clique(node, self.k)

    def _witness_clique(self, node: HierNode, level: int) -> Set[HierNode]:
        if level == 2:
            # `node` is a grid node here; any incident grid edge is a 2-clique.
            neighbor = min(self.base.graph.neighbors(node[1]))
            return {node, (2, neighbor)}
        if node[0] == level:
            clique = self._witness_clique(self.parent(node), level - 1)
            clique.add(node)
        else:
            clique = self._witness_clique(node, level - 1)
            clique.add((level, node))
        return clique

    def __repr__(self) -> str:
        return (
            f"Hierarchy(k={self.k}, base={self.base.rows}x{self.base.cols}, "
            f"n={self.num_nodes})"
        )
