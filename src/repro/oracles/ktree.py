"""The k-tree oracle: ℓ = 1, clique-chain propagation.

A k-tree is (k+1)-chromatic with a unique (k+1)-coloring.  For a
connected fragment ``C``, every node lies in a (k+1)-clique within
:math:`\\mathcal{B}(C, 1)`, and cliques sharing k nodes force each
other's part assignments — the paper's argument that k-trees belong to
:math:`\\mathcal{L}_{k+1, 1}`.

The actual propagation lives in
:class:`~repro.oracles.clique_chain.CliqueChainOracle`; this class just
fixes the parameters.
"""

from __future__ import annotations

from repro.oracles.clique_chain import CliqueChainOracle


class KTreeOracle(CliqueChainOracle):
    """Unique-partition inference for fragments of a k-tree.

    Parameters
    ----------
    tree_k:
        The ``k`` of the k-tree; the oracle infers ``k + 1`` parts.
    """

    def __init__(self, tree_k: int) -> None:
        if tree_k < 1:
            raise ValueError(f"tree_k must be positive, got {tree_k}")
        self.tree_k = tree_k
        super().__init__(num_parts=tree_k + 1, radius=1)
