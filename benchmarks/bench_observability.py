"""Experiment OBSERVABILITY: the instrumentation must be ~free when off.

The simulators' hot paths (every reveal, every ball query) now carry
metric increments and a tracing guard.  This benchmark quantifies what
that costs by timing the same adversary workload under three configs:

``suppressed``
    A :class:`~repro.observability.metrics.NullRegistry` is active and
    tracing is off — the no-op reference approximating the
    pre-instrumentation hot path.
``off``
    The shipped default: a live :class:`MetricsRegistry`, tracing off.
``timers``
    Live metrics plus phase-attribution timers
    (:mod:`repro.observability.timers`) enabled — the configuration
    ``campaign run`` ships by default.
``traced``
    Full tracing to a JSON-lines file plus live metrics.

The acceptance bars (asserted here and by ``--check`` in CI): the
``off`` config — what every user pays whether or not they ever look at
a metric — stays within **3%** of ``suppressed``, and ``timers`` stays
within **5%**.  Tracing itself is allowed to cost more; its price is
reported, not bounded.  A second section checks **merge parity**: the
same deterministic workload played in two registry shards and merged
must produce counter totals and histogram event counts identical to
one serial registry — the invariant that makes worker metric snapshots
trustworthy.

Run as a script to emit machine-readable results::

    PYTHONPATH=src python benchmarks/bench_observability.py \
        --out BENCH_observability.json --check
"""

import argparse
import json
import os
import tempfile
import time

from repro.adversaries.grid import GridAdversary
from repro.analysis.tables import render_table
from repro.core.baselines import GreedyOnlineColorer
from repro.observability.metrics import (
    MetricsRegistry,
    NullRegistry,
    scoped_registry,
)
from repro.observability.timers import timed_phases
from repro.observability.trace import tracing

#: Overhead bound for the tracing-off configuration.
MAX_OFF_OVERHEAD = 0.03
#: Overhead bound for phase timers on (the campaign-run default).
MAX_TIMERS_OVERHEAD = 0.05


def play_games(localities=(1, 2), rounds=2):
    """The fixed workload: Theorem 1 games against greedy (deterministic,
    reveal-heavy — the exact paths the instrumentation touches)."""
    for _ in range(rounds):
        for locality in localities:
            result = GridAdversary(locality=locality).run(
                GreedyOnlineColorer()
            )
            assert result.won, "workload game must be a win"


def _timed(workload) -> float:
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


def _run_once(mode: str, workload, trace_dir: str, attempt: int) -> float:
    if mode == "suppressed":
        with scoped_registry(NullRegistry()):
            return _timed(workload)
    if mode == "off":
        with scoped_registry():
            return _timed(workload)
    if mode == "timers":
        with scoped_registry():
            with timed_phases():
                return _timed(workload)
    if mode == "traced":
        trace_file = os.path.join(trace_dir, f"trace-{attempt}.jsonl")
        with scoped_registry():
            with tracing(trace_file):
                return _timed(workload)
    raise ValueError(f"unknown mode {mode!r}")


def time_configs(modes, workload, trace_dir: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock per configuration.

    Repeats are **interleaved** round-robin over the configs (not run as
    consecutive blocks) so slow drift — thermal, page cache, a noisy
    neighbor — hits every config alike instead of biasing whichever
    block it landed on; the minimum then suppresses the remaining
    point noise.
    """
    best = {mode: None for mode in modes}
    for attempt in range(repeats):
        for mode in modes:
            seconds = _run_once(mode, workload, trace_dir, attempt)
            current = best[mode]
            best[mode] = seconds if current is None else min(current, seconds)
    return best


def _mergeable_view(snapshot) -> dict:
    """The deterministic projection of a snapshot merge parity is judged
    on: counter totals, gauge values, and histogram *event counts* —
    histogram sums are wall-clock and legitimately differ run to run."""
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histogram_counts": {
            name: summary.get("count", 0)
            for name, summary in snapshot.get("histograms", {}).items()
        },
    }


def check_merge_parity(localities=(1,), rounds=1, shards=2) -> dict:
    """Shard the workload across ``shards`` fresh registries, merge the
    snapshots into one parent, and compare against the same workload
    played serially under a single registry.

    This is exactly what the campaign worker pool does per ack: every
    worker folds its games into a private registry and ships the
    snapshot; the parent merges.  The workload is deterministic, so any
    divergence is a merge bug, not noise.
    """
    with timed_phases():
        with scoped_registry() as serial:
            for _ in range(shards):
                play_games(localities, rounds)
            serial_view = _mergeable_view(serial.snapshot())

        parent = MetricsRegistry()
        for _ in range(shards):
            with scoped_registry() as shard:
                play_games(localities, rounds)
                parent.merge(shard.snapshot())
        merged_view = _mergeable_view(parent.snapshot())

    return {
        "shards": shards,
        "instruments": len(serial_view["counters"])
        + len(serial_view["gauges"])
        + len(serial_view["histogram_counts"]),
        "identical": merged_view == serial_view,
    }


def run_bench(localities=(1, 2), rounds=2, repeats=9):
    workload = lambda: play_games(localities, rounds)  # noqa: E731
    workload()  # warm-up: imports, allocator, branch predictors

    with tempfile.TemporaryDirectory(prefix="bench-observability-") as tmp:
        timings = time_configs(
            ("suppressed", "off", "timers", "traced"), workload, tmp, repeats
        )
    parity = check_merge_parity(localities=localities[:1], rounds=1)

    def overhead(mode, reference):
        return timings[mode] / timings[reference] - 1.0

    return {
        "experiment": "observability-overhead",
        "localities": list(localities),
        "rounds": rounds,
        "repeats": repeats,
        "seconds": timings,
        "off_overhead_vs_suppressed": overhead("off", "suppressed"),
        "timers_overhead_vs_suppressed": overhead("timers", "suppressed"),
        "traced_overhead_vs_off": overhead("traced", "off"),
        "max_off_overhead": MAX_OFF_OVERHEAD,
        "max_timers_overhead": MAX_TIMERS_OVERHEAD,
        "off_within_bound": overhead("off", "suppressed") < MAX_OFF_OVERHEAD,
        "timers_within_bound": (
            overhead("timers", "suppressed") < MAX_TIMERS_OVERHEAD
        ),
        "merge_parity": parity,
    }


def test_tracing_off_overhead_under_3_percent():
    report = run_bench(localities=(1, 2), rounds=2, repeats=9)
    assert report["off_within_bound"], (
        f"tracing-off overhead {report['off_overhead_vs_suppressed']:.2%} "
        f"exceeds the {MAX_OFF_OVERHEAD:.0%} budget"
    )


def test_merged_shards_equal_serial_registry():
    parity = check_merge_parity(localities=(1,), rounds=1)
    assert parity["identical"], parity
    assert parity["instruments"] > 0, "workload recorded no instruments"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--localities", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--out", default="BENCH_observability.json")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every gate holds (off < 3%%, timers < 5%%, "
        "merged shards identical to serial) — the CI invocation",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        localities=tuple(args.localities),
        rounds=args.rounds,
        repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(render_table(
        ["config", "seconds"],
        [[mode, f"{seconds:.4f}"]
         for mode, seconds in sorted(report["seconds"].items())],
    ))
    print(f"tracing-off overhead: {report['off_overhead_vs_suppressed']:+.2%} "
          f"(budget {MAX_OFF_OVERHEAD:.0%})")
    print(f"phase-timer overhead: "
          f"{report['timers_overhead_vs_suppressed']:+.2%} "
          f"(budget {MAX_TIMERS_OVERHEAD:.0%})")
    print(f"tracing-on overhead:  {report['traced_overhead_vs_off']:+.2%}")
    parity = report["merge_parity"]
    print(f"merge parity: {parity['shards']} shards, "
          f"{parity['instruments']} instruments, "
          f"identical={parity['identical']}")
    print(f"wrote {args.out}")
    failures = []
    if not report["off_within_bound"]:
        failures.append("tracing-off overhead exceeds budget")
    if not report["timers_within_bound"]:
        failures.append("phase-timer overhead exceeds budget")
    if not parity["identical"]:
        failures.append("merged shard snapshots diverge from serial")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures and (args.check or not report["off_within_bound"]):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
