"""Content-addressed result store: kill-safe progress for campaigns.

A :class:`ResultStore` is a directory of append-only JSON-lines shards
holding one row per *finished* game, keyed by :func:`spec_hash` — the
SHA-256 of the game's canonical spec payload.  Content addressing is
what generalizes :meth:`SweepJournal <repro.robustness.journal.SweepJournal>`
resume from one journal file to a store directory:

* **Re-running a campaign replays nothing** — every expanded game whose
  hash is already in the store is served from disk, whoever wrote it.
* **Overlapping campaigns dedupe automatically** — two specs that expand
  to the same game hash to the same key, so a threshold search reuses
  the grid sweep's rows (and vice versa) without coordination.
* **Kills lose at most the in-flight game** — each writer process
  appends to its own ``rows-<pid>.jsonl`` shard with the journal's
  flush-and-fsync discipline; partial trailing lines from a kill
  mid-write are skipped on load and repaired on the next append.

What goes into the hash is the *semantic* identity of a game: adversary
name + parameters, victim name, locality, and the step budget (which
changes outcomes deterministically).  The wall-clock timeout is
deliberately excluded — it is a property of the machine, not the game —
as are run-level settings (worker count, journal/trace paths).
"""

from __future__ import annotations

import glob as _glob
import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.observability.timers import phase_timer
from repro.robustness.journal import SweepJournal

# Phase-attribution handles (repro.observability.timers): fsyncing a
# result row and loading the shard index are two of the campaign phases
# the wall-clock table must account for.  The handles carry whatever
# scope the recording process set, so worker-side appends show up as
# ``worker:store-fsync`` and parent-side ones bare.
_T_STORE_FSYNC = phase_timer("store-fsync")
_T_STORE_INDEX = phase_timer("store-index")

#: The row field carrying the content address.
HASH_FIELD = "spec_hash"

#: Result rows are keyed by their content address alone.
RESULT_KEY_FIELDS = (HASH_FIELD,)

#: The ``cause`` value marking rows written by the supervised pool's
#: poison-game quarantine (:mod:`repro.analysis.worker_pool`): the game
#: repeatedly killed or hung its worker, so a structured forfeit row is
#: stored in its place and resume never replays it.
QUARANTINE_CAUSE = "poison"

#: The forfeit reason quarantine rows carry.
QUARANTINE_REASON = "forfeit:poison"


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical serialization hashed by :func:`spec_hash`: sorted
    keys, no whitespace, non-JSON values via ``str`` — so logically equal
    payloads always serialize identically."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def spec_hash(payload: Mapping[str, Any]) -> str:
    """The content address of a game spec payload (SHA-256 hex)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """A directory of content-addressed result rows plus campaign
    manifests and a run ledger.

    Layout::

        <root>/rows-<pid>.jsonl       finished rows, one writer per file
        <root>/manifest-<hash>.json   campaign specs that ran here
        <root>/runs.jsonl             one summary line per run (ledger)

    Rows are plain dicts carrying at least :data:`HASH_FIELD`; loading
    tolerates partial trailing lines (a kill mid-write), exactly like
    the sweep journal whose machinery this reuses.
    """

    def __init__(self, root) -> None:
        self.root = os.fspath(root)

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def writer(self, writer_id: Optional[int] = None) -> SweepJournal:
        """This process's append-only row shard (``rows-<pid>.jsonl``)."""
        if writer_id is None:
            writer_id = os.getpid()
        return SweepJournal(
            os.path.join(self.root, f"rows-{writer_id}.jsonl"),
            RESULT_KEY_FIELDS,
        )

    def row_files(self) -> List[str]:
        """Every row shard on disk, in sorted (deterministic) order."""
        return sorted(
            _glob.glob(os.path.join(_glob.escape(self.root), "rows-*.jsonl"))
        )

    def rows(self) -> List[Dict[str, Any]]:
        """Every complete row across all shards (file order, then append
        order within a file).

        Safe against concurrent writers (the serving path reads a store
        that a running campaign is appending to): the shard file list is
        snapshotted once before any file is opened, each shard is read
        in a single pass (so a row is counted at most once per scan), a
        shard that appears after the snapshot is simply picked up by the
        next scan, and a shard that vanishes or errors mid-scan
        contributes nothing rather than raising.  A concurrent append
        can at worst leave a partial trailing line, which
        :meth:`SweepJournal.load` already skips.
        """
        out: List[Dict[str, Any]] = []
        with _T_STORE_INDEX:
            for path in self.row_files():  # one snapshot, taken up front
                try:
                    out.extend(SweepJournal(path, RESULT_KEY_FIELDS).load())
                except OSError:
                    # Shard unlinked or unreadable between snapshot and
                    # open — treat as not-yet-visible, like a row landing
                    # just after the scan.
                    continue
        return out

    def index(self) -> Dict[str, Dict[str, Any]]:
        """Rows keyed by content address (later writes win).

        One consistent scan: callers that need several views of the same
        moment (progress counts plus quarantine lists, say) should take
        one ``index()`` and derive everything from it — see
        :meth:`quarantined`'s ``index`` parameter — instead of
        re-scanning between reads while a writer is appending.
        """
        return {
            row[HASH_FIELD]: row for row in self.rows() if HASH_FIELD in row
        }

    def add(self, row: Mapping[str, Any]) -> None:
        """Record one finished row (must carry :data:`HASH_FIELD`),
        flushed and fsynced before returning."""
        self.add_many([row])

    def add_many(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Record a batch of finished rows under one buffered write and a
        single fsync (the chunked worker pool's ack granularity).

        The durability contract is unchanged: once this returns, every
        row in the batch is on disk.  A kill mid-batch tears at most the
        final line, which load-time tolerance already skips and the next
        append repairs — so chunking changes the fsync *count*, not the
        kill-safety discipline.
        """
        for row in rows:
            if HASH_FIELD not in row:
                raise ValueError(f"result rows must carry {HASH_FIELD!r}")
        if not rows:
            return
        with _T_STORE_FSYNC:
            os.makedirs(self.root, exist_ok=True)
            self.writer().append_many([dict(row) for row in rows])

    def quarantined(
        self, index: Optional[Mapping[str, Dict[str, Any]]] = None
    ) -> List[Dict[str, Any]]:
        """Every quarantine row in the store (``cause="poison"``) —
        games the supervised pool gave up replaying because they
        repeatedly killed or hung their workers.

        Pass a precomputed ``index`` to reuse one scan for several
        derived views (the server builds progress counts and the
        quarantine list from the same snapshot, so a writer appending
        between reads cannot make the two disagree).
        """
        if index is None:
            index = self.index()
        return [
            row
            for row in index.values()
            if row.get("cause") == QUARANTINE_CAUSE
        ]

    def __contains__(self, spec_hash_value: object) -> bool:
        return spec_hash_value in self.index()

    def __len__(self) -> int:
        return len(self.index())

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------
    def record_manifest(self, campaign_payload: Mapping[str, Any]) -> str:
        """Persist a campaign spec payload (idempotent; content-addressed
        like the rows); returns its hash."""
        digest = spec_hash(campaign_payload)
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, f"manifest-{digest}.json")
        if not os.path.exists(path):
            tmp = f"{path}.tmp-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(dict(campaign_payload), handle, sort_keys=True,
                          indent=2, default=str)
                handle.write("\n")
            os.replace(tmp, path)
        return digest

    def manifests(self) -> List[Dict[str, Any]]:
        """Every campaign spec recorded in this store, sorted by hash."""
        out: List[Dict[str, Any]] = []
        pattern = os.path.join(_glob.escape(self.root), "manifest-*.json")
        for path in sorted(_glob.glob(pattern)):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):  # pragma: no cover
                continue
            if isinstance(payload, dict):
                out.append(payload)
        return out

    # ------------------------------------------------------------------
    # Run ledger
    # ------------------------------------------------------------------
    def record_run(self, summary: Mapping[str, Any]) -> None:
        """Append one run-summary line to the ledger (kill-safe append)."""
        os.makedirs(self.root, exist_ok=True)
        ledger = SweepJournal(
            os.path.join(self.root, "runs.jsonl"), ("seq",)
        )
        entry = dict(summary)
        entry["seq"] = len(ledger.load())
        ledger.append(entry)

    def runs(self) -> List[Dict[str, Any]]:
        """The run ledger, in append order."""
        ledger = SweepJournal(
            os.path.join(self.root, "runs.jsonl"), ("seq",)
        )
        return ledger.load()
