#!/usr/bin/env python3
"""Theorem 1 live: the grid adversary defeats every o(log n)-locality
3-coloring algorithm.

The adversary (Section 3.2) forces a directed row path with b-value
k = 4T+5 via the Lemma 3.6 recursion, closes a rectangle whose boundary
cycle then has nonzero b-value — impossible for a proper 3-coloring
(Lemma 3.4) — and exhibits the monochromatic edge this forces.

Every win is machine-checked: the adaptive instance replays all views
against the committed host grid, and the b-value certificate recomputes
from the committed colors.
"""

from repro.adversaries import GridAdversary
from repro.core import AkbariBipartiteColoring, GreedyOnlineColorer
from repro.core.baselines import CanonicalLocalColorer
from repro.models.simulation import LocalAsOnline
from repro.analysis.tables import render_table


def main() -> None:
    portfolio = {
        "greedy-online": GreedyOnlineColorer,
        "akbari (truncated budget)": AkbariBipartiteColoring,
        "LOCAL canonical (sandwiched)": lambda: LocalAsOnline(
            CanonicalLocalColorer()
        ),
    }
    rows = []
    for locality in (1, 2):
        adversary = GridAdversary(locality=locality)
        print(
            f"T = {locality}: forcing b-value k = {adversary.level} on a "
            f"declared {int(adversary.declared_n() ** 0.5)}-per-side grid"
        )
        for name, factory in portfolio.items():
            result = adversary.run(factory())
            rows.append(
                [
                    name,
                    locality,
                    "DEFEATED" if result.won else "survived",
                    result.reason,
                    result.stats.get("b_forced", "-"),
                    result.stats.get("region_length", "-"),
                    str(result.improper_edge) if result.improper_edge else "-",
                ]
            )
    print()
    print(
        render_table(
            ["victim", "T", "verdict", "how", "b forced", "region", "witness edge"],
            rows,
        )
    )
    print()
    print("Every victim loses — as Theorem 1 demands for T in o(log n).")


if __name__ == "__main__":
    main()
