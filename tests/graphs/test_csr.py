"""Tests for the CSR flat-array kernel (`repro.graphs.csr`).

The headline property is differential: under any seeded interleaving of
queries and mutations, the CSR kernel answers byte-identically to the
dict kernel and to an uncached BFS.  Alongside it: interning stability
across ``copy()``/``induced_subgraph``, the incremental-append vs
recompile protocol, and the backend switch itself.
"""

import random

import pytest

from repro.families.grids import SimpleGrid, ToroidalGrid
from repro.families.ktree import deterministic_ktree
from repro.graphs import csr as csr_module
from repro.graphs.csr import (
    HAVE_NUMPY,
    PATCH_BASE,
    CSRView,
    csr_view,
    get_graph_backend,
    set_graph_backend,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import _dict_bfs, ball, bfs_distances

FAMILIES = {
    "grid": lambda: SimpleGrid(5, 6).graph,
    "torus": lambda: ToroidalGrid(5, 5).graph,
    "ktree": lambda: deterministic_ktree(2, 14).graph,
}

#: Fixed per-family seed offsets (str hash is randomized per process).
SEED_BASE = {"grid": 4_000, "torus": 5_000, "ktree": 6_000}

INTERLEAVINGS = 40
STEPS = 25


@pytest.fixture
def csr_backend():
    previous = set_graph_backend("csr")
    yield
    set_graph_backend(previous)


@pytest.fixture
def dict_backend():
    previous = set_graph_backend("dict")
    yield
    set_graph_backend(previous)


def _mutate(graph, rng, spare_labels):
    """One random structural mutation (removals deliberately rare so most
    interleavings exercise the incremental-append path)."""
    roll = rng.random()
    nodes = list(graph.nodes())
    if roll < 0.45:
        u, v = rng.sample(nodes, 2)
        if u != v:
            graph.add_edge(u, v)
    elif roll < 0.65:
        label = ("new", next(spare_labels))
        graph.add_edge(rng.choice(nodes), label)
    elif roll < 0.80:
        anchor = rng.choice(nodes)
        with graph.batch():
            for _ in range(rng.randrange(1, 4)):
                label = ("bulk", next(spare_labels))
                graph.add_edge(anchor, label)
    elif roll < 0.90:
        edges = list(graph.edges())
        if edges:
            u, v = rng.choice(edges)
            graph.remove_edge(u, v)
    else:
        victim = rng.choice(nodes)
        graph.remove_node(victim)


class TestDifferential:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_csr_matches_dict_and_uncached(self, family):
        """csr_bfs == dict_bfs == uncached ball over seeded interleavings."""
        build = FAMILIES[family]
        for seed in range(INTERLEAVINGS):
            rng = random.Random(SEED_BASE[family] + seed)
            graph = build()
            spare_labels = iter(range(10_000))
            for _ in range(STEPS):
                if rng.random() < 0.55:
                    nodes = list(graph.nodes())
                    source = rng.choice(nodes)
                    radius = rng.randrange(0, 4)
                    view = csr_view(graph)
                    from_csr = view.ball_labels([source], radius)
                    from_dict = set(_dict_bfs(graph, [source], radius))
                    assert from_csr == from_dict, (
                        f"{family} seed={seed}: CSR B({source!r}, {radius}) "
                        f"!= dict kernel"
                    )
                    csr_dist = view.distances([source], max_dist=radius)
                    dict_dist = _dict_bfs(graph, [source], radius)
                    assert csr_dist == dict_dist
                else:
                    _mutate(graph, rng, spare_labels)
            # Final sweep through the public (backend-routed) entry points.
            for node in list(graph.nodes())[:8]:
                for radius in (0, 1, 2, 3):
                    previous = set_graph_backend("csr")
                    try:
                        from_csr = ball(graph, node, radius)
                        set_graph_backend("dict")
                        from_dict = ball(graph, node, radius)
                    finally:
                        set_graph_backend(previous)
                    assert from_csr == from_dict

    def test_multi_source_and_unbounded_distances(self, small_grid):
        graph = small_grid.graph
        view = csr_view(graph)
        sources = [(0, 0), (4, 6)]
        assert view.ball_labels(sources, 2) == set(
            _dict_bfs(graph, sources, 2)
        )
        assert view.distances(sources) == _dict_bfs(graph, sources, None)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy fast path not importable")
    def test_vectorized_levels_match_interpreter_levels(self, monkeypatch):
        """Forcing every level through the numpy gather changes nothing."""
        graph = ToroidalGrid(9, 9).graph
        expected = {
            (node, radius): set(_dict_bfs(graph, [node], radius))
            for node in graph.nodes()
            for radius in (1, 2, 5)
        }
        monkeypatch.setattr(csr_module, "NUMPY_FRONTIER_MIN", 1)
        view = CSRView(graph)
        for (node, radius), want in expected.items():
            assert view.ball_labels([node], radius) == want


class TestInterning:
    def test_ids_are_dense_and_round_trip(self, small_grid):
        view = csr_view(small_grid.graph)
        n = small_grid.graph.num_nodes
        assert len(view) == n
        seen = {view.id_of(node) for node in small_grid.graph.nodes()}
        assert seen == set(range(n))
        for node in small_grid.graph.nodes():
            assert view.label_of(view.id_of(node)) == node

    def test_copy_preserves_interning(self, small_grid):
        """copy() keeps insertion order, so the clone interns identically."""
        original = csr_view(small_grid.graph)
        clone = csr_view(small_grid.graph.copy())
        for node in small_grid.graph.nodes():
            assert clone.id_of(node) == original.id_of(node)

    def test_induced_subgraph_interns_in_parent_order(self, small_grid):
        """Induction assigns dense ids following the parent's node order,
        regardless of the order the kept nodes were requested in."""
        keep = [(2, 3), (0, 0), (1, 1), (0, 1)]
        sub = small_grid.graph.induced_subgraph(keep)
        view = csr_view(sub)
        parent_order = [n for n in small_grid.graph.nodes() if n in set(keep)]
        assert [view.label_of(i) for i in range(len(view))] == parent_order
        shuffled = small_grid.graph.induced_subgraph(reversed(keep))
        assert [csr_view(shuffled).label_of(i) for i in range(len(view))] == parent_order

    def test_appended_nodes_get_next_ids(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        view = csr_view(graph)
        graph.add_edge(2, 3)
        graph.add_edge(3, 4)
        synced = csr_view(graph)
        assert synced is view
        assert view.id_of(3) == 3
        assert view.id_of(4) == 4


class TestIncrementalSync:
    def test_additions_append_without_recompile(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        view = csr_view(graph)
        assert view.compiles == 1
        graph.add_edge(0, 5)
        graph.add_edge(7, 9)
        csr_view(graph)
        assert view.compiles == 1
        assert view.appends >= 1
        assert view.ball_labels([0], 1) == {0, 1, 5}

    def test_removal_recompiles(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        view = csr_view(graph)
        graph.remove_edge(3, 4)
        csr_view(graph)
        assert view.compiles == 2
        assert view.ball_labels([3], 2) == {1, 2, 3}

    def test_patch_overload_recompiles(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        view = csr_view(graph)
        for i in range(PATCH_BASE + 12):
            graph.add_edge(0, ("spoke", i))
            csr_view(graph)
        assert view.compiles >= 2
        assert ("spoke", 0) in view.ball_labels([0], 1)
        assert ("spoke", PATCH_BASE + 11) in view.ball_labels([0], 1)

    def test_log_overflow_recompiles(self):
        from repro.graphs.graph import LOG_CAPACITY

        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        view = csr_view(graph)
        for i in range(LOG_CAPACITY + 10):
            graph.add_node(("pad", i))
        csr_view(graph)
        assert view.compiles == 2
        assert view.ball_labels([("pad", 0)], 2) == {("pad", 0)}

    def test_view_is_cached_per_graph(self):
        graph = Graph(edges=[(0, 1)])
        assert csr_view(graph) is csr_view(graph)
        other = Graph(edges=[(0, 1)])
        assert csr_view(other) is not csr_view(graph)


class TestBackendSwitch:
    def test_round_trip_and_validation(self):
        current = get_graph_backend()
        previous = set_graph_backend("dict")
        assert previous == current
        assert get_graph_backend() == "dict"
        set_graph_backend(previous if previous in ("dict", "csr") else "csr")
        set_graph_backend(current)
        with pytest.raises(ValueError):
            set_graph_backend("nonsense")

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "sparse")
        with pytest.raises(ValueError):
            csr_module._initial_backend()
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "dict")
        assert csr_module._initial_backend() == "dict"
        monkeypatch.delenv("REPRO_GRAPH_BACKEND", raising=False)
        assert csr_module._initial_backend() == "csr"

    def test_public_entry_points_agree_across_backends(self, small_torus, csr_backend):
        graph = small_torus.graph
        from_csr = {
            node: bfs_distances(graph, node, max_dist=2) for node in graph.nodes()
        }
        set_graph_backend("dict")
        for node in graph.nodes():
            assert bfs_distances(graph, node, max_dist=2) == from_csr[node]
