"""Flight recorder: a bounded ring of recent events, dumped on faults.

Chaos-hardened campaigns fail in ways counters cannot explain after the
fact: ``campaign_lease_expirations == 3`` says three workers hung, not
*which* games they held, in what order, or what the pool did next.  The
full tracer answers that but is disabled by default precisely because
recording everything costs too much for always-on use.

The flight recorder is the middle path, borrowed from avionics: an
in-process ring buffer (:class:`FlightRecorder`, default 1024 entries)
that is **always on** and **always cheap** — recording an event is a
dict build plus a ``deque.append``, no clock syscalls beyond one
``time.monotonic`` and no I/O — and is written to disk only when
something goes wrong.  The supervisor dumps it on:

* lease expiry (a worker hung past its deadline and was SIGKILLed),
* poison quarantine (a game killed ``poison_threshold`` workers),
* pool degradation (restart budget exhausted, falling back to serial),
* an unhandled scheduler exception escaping a campaign run.

Dumps follow the repo's kill-safe artifact discipline: the records are
written to a temp file, flushed, fsynced, and atomically renamed into
place (``flight-<pid>.jsonl`` under the campaign store), so a fault
*during* the dump leaves either the previous dump or a complete new one
— never a torn file.  Each dump starts with a header record carrying the
trigger reason, pid, and drop count, followed by the buffered events
oldest-first.  ``repro campaign status`` points at dumps it finds, and
the CI chaos job uploads them as workflow artifacts.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

#: Default ring capacity — enough for the full event history of a small
#: campaign and the recent tail of a large one, at ~100 bytes a record.
DEFAULT_CAPACITY = 1024

#: Filename pattern for dumps inside a campaign store directory.
DUMP_PREFIX = "flight-"
DUMP_SUFFIX = ".jsonl"


class FlightRecorder:
    """A bounded, always-on ring buffer of recent structured events.

    Events are plain dicts: a monotonic sequence number, a
    ``time.monotonic`` timestamp (durations between records are
    meaningful; absolute values are not), a ``kind`` string, and
    whatever keyword fields the call site attached.  When the ring is
    full the oldest event is discarded and a drop counter incremented,
    so a dump always says how much history it is missing.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (cheap; safe to call on every state change)."""
        if len(self._ring) == self.capacity:
            self._dropped += 1
        event = {"seq": self._seq, "ts": time.monotonic(), "kind": kind}
        if fields:
            event.update(fields)
        self._seq += 1
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events discarded because the ring was full."""
        return self._dropped

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events, oldest first (a copy)."""
        return list(self._ring)

    def clear(self) -> None:
        """Forget everything (sequence numbers keep increasing)."""
        self._ring.clear()
        self._dropped = 0

    def dump(self, path: str, reason: str) -> str:
        """Write the ring to ``path`` as JSON lines, kill-safely.

        The first line is a ``flight-dump`` header (reason, pid, event
        count, drop count); the rest are the events oldest-first.  The
        write goes through a temp file + fsync + atomic rename so a
        crash mid-dump never leaves a torn artifact.  Returns ``path``.
        """
        events = self.events()
        header = {
            "kind": "flight-dump",
            "reason": reason,
            "pid": os.getpid(),
            "events": len(events),
            "dropped": self._dropped,
            "capacity": self.capacity,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path


#: The process-wide recorder every harness component records into.
FLIGHT = FlightRecorder()


def flight_dump_path(root: str) -> str:
    """The dump path for this process under a campaign store ``root``."""
    return os.path.join(root, f"{DUMP_PREFIX}{os.getpid()}{DUMP_SUFFIX}")


def find_flight_dumps(root: str) -> List[str]:
    """Flight-recorder dumps present under ``root``, sorted by name."""
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return sorted(
        os.path.join(root, name)
        for name in names
        if name.startswith(DUMP_PREFIX) and name.endswith(DUMP_SUFFIX)
    )


def read_flight_dump(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the records of a dump, tolerating a torn trailing line.

    The dump itself is written atomically, but the reader stays as
    forgiving as the journal loaders anyway — a half-line at EOF (e.g.
    a dump truncated by an exotic filesystem) is skipped, not fatal.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def dump_on_fault(root: Optional[str], reason: str, **fields: Any) -> Optional[str]:
    """Record a fault event and dump the ring under ``root``.

    The supervisor's one-liner: records ``kind="fault"`` with the
    caller's fields, then dumps next to the campaign store.  Returns
    the dump path, or ``None`` when ``root`` is unset or the dump
    itself fails (a flight recorder must never turn a fault into a
    second fault — the original error always propagates instead).
    """
    FLIGHT.record("fault", reason=reason, **fields)
    if not root:
        return None
    try:
        return FLIGHT.dump(flight_dump_path(root), reason)
    except OSError:
        return None
