"""Crash-safe tournaments: journaling and resume-after-kill."""

import json

from repro.analysis.tournament import (
    JOURNAL_KEY_FIELDS,
    default_adversaries,
    run_tournament,
)
from repro.core.baselines import GreedyOnlineColorer
from repro.robustness.faults import CrashingAlgorithm
from repro.robustness.journal import SweepJournal
from repro.robustness.supervisor import GamePolicy


def small_lineup():
    """Two adversaries x two victims = four fast games."""
    adversaries = {
        name: entry
        for name, entry in default_adversaries(1).items()
        if name in ("theorem1-grid", "theorem2-torus")
    }
    victims = {
        "greedy": GreedyOnlineColorer,
        "faulty-crash": lambda: CrashingAlgorithm(trigger_step=3),
    }
    return adversaries, victims


def counting(adversaries, counter):
    """Wrap each adversary entry to count actual plays."""
    def wrap(name, entry):
        def play(victim):
            counter[name] = counter.get(name, 0) + 1
            return entry(victim)
        return play

    return {name: wrap(name, entry) for name, entry in adversaries.items()}


def test_journal_records_every_game(tmp_path):
    adversaries, victims = small_lineup()
    path = tmp_path / "sweep.jsonl"
    rows = run_tournament(
        locality=1, victims=victims, adversaries=adversaries,
        policy=GamePolicy(timeout=10.0), journal_path=path,
    )
    journal = SweepJournal(path, JOURNAL_KEY_FIELDS)
    entries = journal.load()
    assert len(entries) == len(rows) == 4
    assert {journal.key_of(e) for e in entries} == {
        (r.adversary, r.victim, r.locality) for r in rows
    }


def test_resume_replays_only_remaining_games(tmp_path):
    """Kill a sweep mid-run; --resume must complete only the remainder."""
    adversaries, victims = small_lineup()
    path = tmp_path / "sweep.jsonl"
    full = run_tournament(
        locality=1, victims=victims, adversaries=adversaries,
        policy=GamePolicy(timeout=10.0), journal_path=path,
    )
    assert len(full) == 4

    # Simulate a kill after two completed games, mid-write of the third:
    # keep two complete lines plus a truncated partial line.
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:2]) + "\n" + lines[2][:25])

    counter = {}
    resumed = run_tournament(
        locality=1,
        victims=victims,
        adversaries=counting(adversaries, counter),
        policy=GamePolicy(timeout=10.0),
        journal_path=path,
        resume=True,
    )
    # Full rectangle returned, but only the two unfinished games played.
    assert len(resumed) == 4
    assert sum(counter.values()) == 2
    assert [
        (r.adversary, r.victim) for r in resumed
    ] == [(r.adversary, r.victim) for r in full]

    # The journal now holds every game exactly once (partial line healed).
    journal = SweepJournal(path, JOURNAL_KEY_FIELDS)
    entries = journal.load()
    assert len(entries) == 4
    assert len({journal.key_of(e) for e in entries}) == 4

    # Resuming a finished sweep plays nothing at all.
    counter.clear()
    again = run_tournament(
        locality=1,
        victims=victims,
        adversaries=counting(adversaries, counter),
        policy=GamePolicy(timeout=10.0),
        journal_path=path,
        resume=True,
    )
    assert len(again) == 4
    assert counter == {}
    assert len(SweepJournal(path, JOURNAL_KEY_FIELDS)) == 4


def test_journal_skips_corrupt_lines(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, ("a",))
    journal.append({"a": 1, "x": "one"})
    with open(path, "a") as handle:
        handle.write('{"a": 2, "x": "tru')  # kill mid-write
    assert [row["a"] for row in journal.load()] == [1]
    # A later append must not glue onto the partial line.
    journal.append({"a": 3, "x": "three"})
    assert [row["a"] for row in journal.load()] == [1, 3]
    raw = path.read_text().splitlines()
    assert json.loads(raw[-1])["a"] == 3


def test_key_types_survive_json_round_trip(tmp_path):
    """Tuple-valued key fields come back as lists from JSON; completed()
    must key them identically to the live rows."""
    path = tmp_path / "mixed.jsonl"
    journal = SweepJournal(path, ("name", "shape", "locality"))
    live_rows = [
        {"name": "a", "shape": (3, 4), "locality": 1, "won": True},
        {"name": "a", "shape": (3, 4), "locality": "1", "won": False},
        {"name": "b", "shape": ("torus", (2, 2)), "locality": 2, "won": True},
    ]
    for row in live_rows:
        journal.append(row)
    done = journal.completed()
    assert len(done) == 3
    for row in live_rows:
        assert journal.key_of(row) in done
    # Integer and string localities stay distinct keys.
    assert journal.key_of(live_rows[0]) != journal.key_of(live_rows[1])
    # Nested tuples normalize recursively.
    assert journal.key_of(live_rows[2]) == ("b", ("torus", (2, 2)), 2)


def test_key_of_normalizes_non_json_values(tmp_path):
    """Values json.dumps(default=str) stringifies must key consistently."""
    from pathlib import Path

    path = tmp_path / "exotic.jsonl"
    journal = SweepJournal(path, ("source",))
    live = {"source": Path("/data/run1"), "won": True}
    journal.append(live)
    assert journal.key_of(live) in journal.completed()


def test_merge_shards_concatenates_and_dedupes(tmp_path):
    path = tmp_path / "main.jsonl"
    journal = SweepJournal(path, ("a",))
    journal.append({"a": 1, "who": "main"})
    shard_x = journal.shard("x")
    shard_x.append({"a": 1, "who": "shard-x"})  # duplicate of main row
    shard_x.append({"a": 2, "who": "shard-x"})
    shard_y = journal.shard("y")
    shard_y.append({"a": 3, "who": "shard-y"})
    assert len(journal.shard_paths()) == 2

    merged = journal.merge_shards()
    assert merged == 2  # the duplicate was skipped
    assert journal.shard_paths() == []  # shard files removed
    done = journal.completed()
    assert set(done) == {(1,), (2,), (3,)}
    assert done[(1,)]["who"] == "main"  # main journal wins over shards


def test_merge_shards_idempotent_and_kill_safe(tmp_path):
    path = tmp_path / "main.jsonl"
    journal = SweepJournal(path, ("a",))
    shard = journal.shard(1234)
    shard.append({"a": 7})
    assert journal.merge_shards() == 1
    # Re-merging with a re-created identical shard only deduplicates.
    shard.append({"a": 7})
    assert journal.merge_shards() == 0
    assert len(journal) == 1
