"""Tests for growth-curve fitting."""

import math

import pytest

from repro.analysis.fitting import best_growth_model, fit_growth


def test_recovers_log_growth():
    xs = [2 ** i for i in range(4, 14)]
    ys = [3.0 * math.log2(x) + 1.0 for x in xs]
    fit = fit_growth(xs, ys, "log")
    assert fit.slope == pytest.approx(3.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)


def test_recovers_sqrt_growth():
    xs = [100, 400, 900, 1600, 2500]
    ys = [0.5 * math.sqrt(x) for x in xs]
    fit = fit_growth(xs, ys, "sqrt")
    assert fit.slope == pytest.approx(0.5)
    assert fit.r_squared == pytest.approx(1.0)


def test_recovers_linear_growth():
    xs = list(range(10, 100, 10))
    ys = [2 * x + 7 for x in xs]
    fit = fit_growth(xs, ys, "linear")
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(7.0)


def test_best_model_selection():
    xs = [2 ** i for i in range(4, 16)]
    assert best_growth_model(xs, [2 * math.log2(x) for x in xs]).model == "log"
    assert best_growth_model(xs, [0.1 * math.sqrt(x) for x in xs]).model == "sqrt"
    assert best_growth_model(xs, [3 * x + 5 for x in xs]).model == "linear"
    assert best_growth_model(xs, [4.0 for __ in xs]).model == "const"


def test_best_model_with_noise():
    import random

    rng = random.Random(1)
    xs = [2 ** i for i in range(6, 18)]
    ys = [5 * math.log2(x) + rng.uniform(-0.5, 0.5) for x in xs]
    assert best_growth_model(xs, ys).model == "log"


def test_predict():
    fit = fit_growth([1, 2, 4, 8], [0, 1, 2, 3], "log")
    assert fit.predict(16) == pytest.approx(4.0)


def test_validation():
    with pytest.raises(ValueError):
        fit_growth([1, 2], [1, 2], "cubic")
    with pytest.raises(ValueError):
        fit_growth([1], [1], "log")
    with pytest.raises(ValueError):
        fit_growth([1, 2], [1], "log")


def test_constant_data_degenerate():
    fit = fit_growth([1, 2, 3], [5, 5, 5], "const")
    assert fit.intercept == pytest.approx(5.0)
    assert fit.r_squared == pytest.approx(1.0)
