"""Plain-text table rendering for benchmark reports.

The benchmarks print the same rows EXPERIMENTS.md records, so a rerun
regenerates the document's numbers verbatim.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A fixed-width table with a header rule, ready for printing."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)
