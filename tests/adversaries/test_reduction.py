"""Tests for the Lemma 5.7 reduction and the Theorem 5 chain."""

import pytest

from repro.adversaries.grid import GridAdversary
from repro.adversaries.reduction import HierarchyReduction, reduce_to_grid
from repro.core.baselines import GreedyOnlineColorer
from repro.core.unify import UnifyColoring
from repro.families.hierarchy import Hierarchy
from repro.families.random_graphs import random_reveal_order
from repro.models.online_local import OnlineLocalSimulator
from repro.oracles import CliqueChainOracle
from repro.verify.coloring import find_monochromatic_edge, is_proper


def test_wrapper_uses_at_most_k_plus_one_colors():
    h2 = Hierarchy(2, 5, 5)
    wrapper = HierarchyReduction(GreedyOnlineColorer())
    sim = OnlineLocalSimulator(h2.graph, wrapper, locality=2, num_colors=3)
    coloring = sim.run(sorted(h2.graph.nodes(), key=repr))
    assert max(coloring.values()) <= 3


@pytest.mark.parametrize("seed", range(6))
def test_lemma_5_7_contract(seed):
    """Whenever the wrapper's output is improper, the inner algorithm's
    synthetic coloring is improper too — the exact contrapositive used in
    the proof of Lemma 5.7."""
    h2 = Hierarchy(2, 6, 6)
    inner = GreedyOnlineColorer()
    wrapper = HierarchyReduction(inner)
    sim = OnlineLocalSimulator(h2.graph, wrapper, locality=2, num_colors=3)
    order = random_reveal_order(sorted(h2.graph.nodes(), key=repr), seed=seed)
    coloring = sim.run(order)
    if not is_proper(h2.graph, coloring):
        synthetic_edge = find_monochromatic_edge(
            wrapper._tracker.view_graph, wrapper._tracker.colors
        )
        assert synthetic_edge is not None


def test_proper_inner_gives_proper_wrapper():
    """With an inner algorithm that properly (k+2)-colors the synthetic
    G_3 (unify + clique oracle, generous budget), the wrapper properly
    3-colors the grid."""
    h2 = Hierarchy(2, 6, 6)
    inner = UnifyColoring(CliqueChainOracle(3, 3))
    wrapper = HierarchyReduction(inner)
    sim = OnlineLocalSimulator(h2.graph, wrapper, locality=30, num_colors=3)
    coloring = sim.run(random_reveal_order(sorted(h2.graph.nodes(), key=repr), seed=4))
    assert is_proper(h2.graph, coloring)
    assert max(coloring.values()) <= 3


def test_synthetic_view_structure():
    """Duplicates exist, attach to their original's neighborhood, and are
    pairwise non-adjacent."""
    h2 = Hierarchy(2, 4, 4)
    wrapper = HierarchyReduction(GreedyOnlineColorer())
    sim = OnlineLocalSimulator(h2.graph, wrapper, locality=1, num_colors=3)
    sim.reveal((2, (1, 1)))
    synthetic = wrapper._tracker.view_graph
    base_ids = [n for n in synthetic.nodes() if n[0] == "b"]
    dup_ids = [n for n in synthetic.nodes() if n[0] == "d"]
    assert len(base_ids) == len(dup_ids) == 5
    for b in base_ids:
        assert synthetic.has_edge(b, ("d", b[1]))
    for d1 in dup_ids:
        for d2 in dup_ids:
            if d1 != d2:
                assert not synthetic.has_edge(d1, d2)


def test_chain_composition_depth():
    alg = reduce_to_grid(GreedyOnlineColorer(), k=5)
    assert alg.name == "reduced(reduced(reduced(greedy-online)))"
    with pytest.raises(ValueError):
        reduce_to_grid(GreedyOnlineColorer(), k=1)


@pytest.mark.parametrize("k", (3, 4))
def test_theorem_5_executable(k):
    """The full Theorem 5 pipeline: a (k+1)-colorer of G_k, reduced to a
    grid 3-colorer, is defeated by the Theorem 1 adversary."""
    inner = UnifyColoring(CliqueChainOracle(k, k))
    result = GridAdversary(locality=1).run(reduce_to_grid(inner, k=k))
    assert result.won
