"""Unit tests for the HTTP plumbing: parsing, routing, rate limiting,
and SSE formatting — no sockets, no campaign engine."""

import asyncio
import json

import pytest

from repro.server.ratelimit import RateLimiter, TokenBucket
from repro.server.routes import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    Response,
    Router,
    json_response,
    read_request,
)
from repro.server import sse


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------


def test_read_request_parses_line_headers_query_and_body():
    body = b'{"version": 1}'
    request = _parse(
        b"POST /v1/campaigns?offset=3&limit=2 HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"X-Client-Id: alice\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"\r\n" + body
    )
    assert request.method == "POST"
    assert request.path == "/v1/campaigns"
    assert request.query == {"offset": "3", "limit": "2"}
    assert request.headers["x-client-id"] == "alice"
    assert request.json() == {"version": 1}
    assert request.client_key() == "alice"


def test_read_request_returns_none_on_clean_eof():
    assert _parse(b"") is None


def test_read_request_rejects_malformed_request_line():
    with pytest.raises(HttpError) as excinfo:
        _parse(b"BROKEN\r\n\r\n")
    assert excinfo.value.status == 400
    assert excinfo.value.body.code == "bad-request"


def test_read_request_rejects_oversized_body():
    head = (
        b"POST /v1/campaigns HTTP/1.1\r\n"
        b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
    )
    with pytest.raises(HttpError) as excinfo:
        _parse(head)
    assert excinfo.value.status == 413
    assert excinfo.value.body.code == "payload-too-large"


def test_read_request_rejects_truncated_body():
    with pytest.raises(HttpError) as excinfo:
        _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
    assert excinfo.value.status == 400


def test_request_json_rejects_garbage():
    request = Request(method="POST", path="/", body=b"not json")
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.body.code == "bad-request"


def test_response_encode_has_content_length_and_close():
    response = json_response(200, {"ok": True})
    raw = response.encode()
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"HTTP/1.1 200 OK" in head
    assert f"Content-Length: {len(body)}".encode() in head
    assert b"Connection: close" in head
    assert json.loads(body) == {"ok": True}


def test_http_error_to_response_is_structured():
    error = HttpError(429, "rate-limited", "slow down",
                      headers={"Retry-After": "1"})
    response = error.to_response()
    assert response.status == 429
    assert response.headers["Retry-After"] == "1"
    payload = json.loads(response.body)
    assert payload["code"] == "rate-limited"
    assert payload["version"] == 1


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


async def _dummy(request, params, writer):  # pragma: no cover - never run
    return Response(status=200)


def test_router_captures_path_params():
    router = Router()
    router.add("GET", "/v1/campaigns/{id}/rows", _dummy)
    handler, params = router.resolve("GET", "/v1/campaigns/abc123/rows")
    assert handler is _dummy
    assert params == {"id": "abc123"}


def test_router_404_and_405():
    router = Router()
    router.add("GET", "/v1/campaigns/{id}", _dummy)
    with pytest.raises(HttpError) as excinfo:
        router.resolve("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(HttpError) as excinfo:
        router.resolve("DELETE", "/v1/campaigns/abc")
    assert excinfo.value.status == 405
    assert excinfo.value.headers["Allow"] == "GET"
    assert excinfo.value.body.code == "method-not-allowed"


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------


def test_token_bucket_spends_and_refills():
    clock = {"now": 0.0}
    bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
    assert bucket.allow(clock["now"]) and bucket.allow(clock["now"])
    assert not bucket.allow(clock["now"])  # burst spent
    assert bucket.allow(clock["now"] + 1.0)  # one second = one token


def test_rate_limiter_is_per_client():
    clock = {"now": 0.0}
    limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock["now"])
    assert limiter.allow("alice")
    assert not limiter.allow("alice")
    assert limiter.allow("bob")  # separate bucket
    clock["now"] += 1.0
    assert limiter.allow("alice")


def test_rate_limiter_lru_is_bounded():
    limiter = RateLimiter(rate=1.0, burst=1, max_clients=2,
                          clock=lambda: 0.0)
    assert limiter.allow("a") and limiter.allow("b") and limiter.allow("c")
    # "a" was evicted to admit "c"; it returns with a fresh bucket.
    assert len(limiter._buckets) == 2
    assert limiter.allow("a")


def test_rate_limiter_zero_rate_disables():
    limiter = RateLimiter(rate=0.0, burst=0)
    assert all(limiter.allow("x") for _ in range(100))
    assert limiter.retry_after() == 0.0


# ----------------------------------------------------------------------
# SSE formatting
# ----------------------------------------------------------------------


def test_sse_event_format():
    raw = sse.format_event("progress", {"done": 1}, event_id=7)
    assert raw == b'id: 7\nevent: progress\ndata: {"done": 1}\n\n'
    assert sse.format_comment("hi") == b": hi\n\n"
    head = sse.response_head()
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"text/event-stream" in head
