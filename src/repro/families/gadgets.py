"""The gadget :math:`A(k)` and hard instance :math:`G^*` of Section 4.

A gadget has node set ``[k] x [k]`` (we use 0-based indices); two nodes are
adjacent iff they differ in *both* coordinates (neither same row nor same
column).  The hard instance :math:`G^*` chains ``n' = n / k^2`` gadgets,
connecting nodes of consecutive gadgets under the same
"different row *and* different column" rule.

Key structural facts implemented and tested here:

* :math:`G^*` is k-partite — rows give a proper k-coloring
  (Proposition 4.1).
* Transposing every gadget — ``(ℓ, i, j) -> (ℓ, j, i)`` — is an
  automorphism, which is the move the Theorem 3 adversary uses to flip a
  fragment from row-colorful to column-colorful.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph

GadgetNode = Tuple[int, int]
ChainNode = Tuple[int, int, int]


class Gadget:
    """A standalone gadget :math:`A(k)` with nodes ``(i, j)``, 0-based."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError(f"gadgets need k >= 2, got {k}")
        self.k = k
        self.graph = Graph()
        with self.graph.batch():
            for i in range(k):
                for j in range(k):
                    self.graph.add_node((i, j))
            for i in range(k):
                for j in range(k):
                    for i2 in range(k):
                        for j2 in range(k):
                            if i2 != i and j2 != j and (i, j) < (i2, j2):
                                self.graph.add_edge((i, j), (i2, j2))

    def row(self, i: int) -> List[GadgetNode]:
        """Nodes of row ``i``."""
        return [(i, j) for j in range(self.k)]

    def column(self, j: int) -> List[GadgetNode]:
        """Nodes of column ``j``."""
        return [(i, j) for i in range(self.k)]

    def __repr__(self) -> str:
        return f"Gadget(k={self.k})"


class GadgetChain:
    """The hard instance :math:`G^*`: a chain of gadgets.

    Parameters
    ----------
    k:
        Gadget dimension; the chain is k-partite and the hard coloring
        budget is ``2k - 2`` colors.
    length:
        Number of gadgets ``n'``; total nodes ``n = length * k**2``.
    """

    def __init__(self, k: int, length: int) -> None:
        if k < 2:
            raise ValueError(f"gadget chains need k >= 2, got {k}")
        if length < 1:
            raise ValueError(f"chain length must be positive, got {length}")
        self.k = k
        self.length = length
        self.graph = Graph()
        with self.graph.batch():
            for idx in range(length):
                for i in range(k):
                    for j in range(k):
                        self.graph.add_node((idx, i, j))
            for idx in range(length):
                self._connect(idx, idx)
                if idx + 1 < length:
                    self._connect(idx, idx + 1)

    def _connect(self, a: int, b: int) -> None:
        """Edges between gadgets ``a`` and ``b`` (or within one if a == b)."""
        k = self.k
        for i in range(k):
            for j in range(k):
                for i2 in range(k):
                    for j2 in range(k):
                        if i2 == i or j2 == j:
                            continue
                        u, v = (a, i, j), (b, i2, j2)
                        if a != b or u < v:
                            self.graph.add_edge(u, v)

    @property
    def num_nodes(self) -> int:
        """``n = length * k**2``."""
        return self.length * self.k * self.k

    def gadget_nodes(self, idx: int) -> List[ChainNode]:
        """All nodes of the ``idx``-th gadget."""
        if not 0 <= idx < self.length:
            raise IndexError(f"gadget index {idx} outside chain of length {self.length}")
        return [(idx, i, j) for i in range(self.k) for j in range(self.k)]

    def row(self, idx: int, i: int) -> List[ChainNode]:
        """Row ``i`` of gadget ``idx``."""
        return [(idx, i, j) for j in range(self.k)]

    def column(self, idx: int, j: int) -> List[ChainNode]:
        """Column ``j`` of gadget ``idx``."""
        return [(idx, i, j) for i in range(self.k)]

    def canonical_color(self, node: ChainNode) -> int:
        """The row coloring of Proposition 4.1: color = row index."""
        __, i, __ = node
        return i

    def transpose(self) -> Dict[ChainNode, ChainNode]:
        """The automorphism swapping rows and columns in every gadget.

        Adjacency ``i != i' and j != j'`` is symmetric under swapping the
        coordinate pair, so this is an automorphism of the whole chain —
        and it maps row-colorful colorings to column-colorful ones, which
        is exactly what the Theorem 3 adversary needs.
        """
        return {
            (idx, i, j): (idx, j, i)
            for idx in range(self.length)
            for i in range(self.k)
            for j in range(self.k)
        }

    def __repr__(self) -> str:
        return f"GadgetChain(k={self.k}, length={self.length}, n={self.num_nodes})"
