#!/usr/bin/env python3
"""The model landscape of the paper's introduction, executable.

    LOCAL  ⊆  SLOCAL, Dynamic-LOCAL  ⊆  Online-LOCAL

This script runs (Δ+1)-coloring — the problem that is easy *everywhere*
— through four models on the same grid, and then shows the problem that
separates them: 3-coloring, easy in Online-LOCAL at O(log n) locality
(Corollary 1.1) yet Θ(√n) in LOCAL.
"""

import math

from repro.analysis.tables import render_table
from repro.core import AkbariBipartiteColoring, GreedyOnlineColorer
from repro.core.baselines import CanonicalLocalColorer
from repro.families import SimpleGrid
from repro.families.random_graphs import random_reveal_order
from repro.models import (
    DynamicLocalSimulator,
    LocalAsOnline,
    LocalSimulator,
    OnlineLocalSimulator,
    SLocalSimulator,
)
from repro.models.dynamic_local import DynamicGreedy
from repro.models.slocal import SLocalAlgorithm, SLocalView
from repro.verify import is_proper


class GreedySLocal(SLocalAlgorithm):
    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {view.colors.get(v) for v in view.graph.neighbors(view.center)}
        return min(c for c in range(1, self.num_colors + 1) if c not in used)


def main() -> None:
    side = 12
    grid = SimpleGrid(side, side)
    n = grid.num_nodes
    order = random_reveal_order(sorted(grid.graph.nodes()), seed=2)
    rows = []

    # (Δ+1)-coloring = 5 colors on a grid: easy in every model.
    local = LocalSimulator(
        grid.graph, CanonicalLocalColorer(), locality=2 * side, num_colors=3
    ).run()
    rows.append(["LOCAL", "canonical 2-coloring", 2 * side,
                 "proper" if is_proper(grid.graph, local) else "improper"])

    slocal = SLocalSimulator(
        grid.graph, GreedySLocal(), locality=1, num_colors=5
    ).run(list(order))
    rows.append(["SLOCAL", "greedy (Δ+1)", 1,
                 "proper" if is_proper(grid.graph, slocal) else "improper"])

    dynamic = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
    present = set()
    for node in sorted(grid.graph.nodes()):
        dynamic.insert(node, [v for v in grid.graph.neighbors(node) if v in present])
        present.add(node)
    rows.append(["Dynamic-LOCAL", "greedy (Δ+1)", 1,
                 "proper" if is_proper(grid.graph, dynamic.colors) else "improper"])

    online = OnlineLocalSimulator(
        grid.graph, GreedyOnlineColorer(), locality=1, num_colors=5
    ).run(list(order))
    rows.append(["Online-LOCAL", "greedy (Δ+1)", 1,
                 "proper" if is_proper(grid.graph, online) else "improper"])

    print("(Δ+1)-coloring: easy in every model of the sandwich")
    print(render_table(["model", "algorithm", "T", "outcome"], rows))
    print()

    # 3-coloring: the separating problem.  Use a grid whose diameter
    # exceeds the log-budget so the LOCAL baseline cannot see everything.
    big = SimpleGrid(40, 40)
    big_order = random_reveal_order(sorted(big.graph.nodes()), seed=2)
    budget = 3 * math.ceil(math.log2(big.num_nodes))
    akbari = OnlineLocalSimulator(
        big.graph, AkbariBipartiteColoring(), locality=budget, num_colors=3
    ).run(list(big_order))
    sandwiched = OnlineLocalSimulator(
        big.graph, LocalAsOnline(CanonicalLocalColorer()),
        locality=budget, num_colors=3,
    ).run(list(big_order))
    grid = big
    print("3-coloring: the separator (Corollary 1.1 vs Θ(√n) in LOCAL)")
    print(render_table(
        ["model", "algorithm", "T", "outcome"],
        [
            ["Online-LOCAL", "akbari", budget,
             "proper" if is_proper(grid.graph, akbari) else "improper"],
            ["LOCAL (via sandwich)", "canonical", budget,
             "proper" if is_proper(grid.graph, sandwiched) else
             "improper (needs T ≈ √n)"],
        ],
    ))


if __name__ == "__main__":
    main()
