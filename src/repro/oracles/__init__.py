"""Locally-inferable-unique-coloring oracles (Definition 1.4).

For a graph in :math:`\\mathcal{L}_{k,\\ell}`, the unique k-partition
restricted to any connected node set ``C`` can be inferred from the
induced subgraph of the ℓ-radius neighborhood of ``C``.  Each oracle here
implements that inference *purely from the algorithm's view* — no host
access — for one graph family:

* :class:`BipartiteOracle` — parity / bipartition, ℓ = 0.
* :class:`TriangularOracle` — triangle-chain propagation, ℓ = 1
  (the paper's Figure 1 argument, executable).
* :class:`KTreeOracle` — clique-chain propagation, ℓ = 1.
* :class:`BruteForceOracle` — enumerates all proper k-colorings of the
  neighborhood (exponential; used by tests to validate the fast oracles
  and to check Definition 1.4 itself).
"""

from repro.oracles.base import OracleError, PartitionOracle
from repro.oracles.bipartite import BipartiteOracle
from repro.oracles.triangular import TriangularOracle
from repro.oracles.clique_chain import CliqueChainOracle
from repro.oracles.ktree import KTreeOracle
from repro.oracles.brute import BruteForceOracle

__all__ = [
    "OracleError",
    "PartitionOracle",
    "BipartiteOracle",
    "TriangularOracle",
    "CliqueChainOracle",
    "KTreeOracle",
    "BruteForceOracle",
]
