"""Tightness of the Section 4 machinery — the paper's open problem.

The paper notes (end of Section 1.1.2) that the hard-instance technique
cannot extend to all (c, k): if it worked for c > 2k-2 it would
contradict Corollary 1.1.  The mechanism that breaks is Claim 4.5: with
2k-1 colors a gadget need not be exactly one of row-/column-colorful.
These tests *exhibit* the breakage, certifying that the construction is
used at exactly its limit.
"""

from repro.families.gadgets import Gadget, GadgetChain
from repro.oracles.brute import proper_colorings
from repro.verify.gadget_props import classify_gadget


def gadget_lines(k):
    g = Gadget(k)
    return g, [g.row(i) for i in range(k)], [g.column(j) for j in range(k)]


def test_claim_4_5_breaks_with_2k_minus_1_colors():
    """With 2k-1 = 5 colors, some proper coloring of A(3) is neither
    row-colorful nor column-colorful — or both.  (With 2k-2 = 4 colors
    the dichotomy is exact; see test_gadget_props.)"""
    g, rows, cols = gadget_lines(3)
    verdicts = set()
    for coloring in proper_colorings(g.graph, 5, limit=20000):
        shifted = {node: color + 1 for node, color in coloring.items()}
        verdicts.add(classify_gadget(rows, cols, shifted))
        if "both" in verdicts:
            break
    assert "both" in verdicts, (
        "expected the dichotomy to fail at 2k-1 colors"
    )


def test_lemma_4_6_breaks_with_2k_minus_1_colors():
    """With 2k-1 colors, consecutive gadgets CAN disagree (one
    row-colorful, the next column-colorful) — the chain argument
    collapses, so no Ω(n) bound follows for (2k-1)-coloring this way."""
    chain = GadgetChain(3, 2)
    rows0 = [chain.row(0, i) for i in range(3)]
    cols0 = [chain.column(0, j) for j in range(3)]
    rows1 = [chain.row(1, i) for i in range(3)]
    cols1 = [chain.column(1, j) for j in range(3)]
    seen_pairs = set()
    for coloring in proper_colorings(chain.graph, 5, limit=200000):
        shifted = {node: color + 1 for node, color in coloring.items()}
        pair = (
            classify_gadget(rows0, cols0, shifted),
            classify_gadget(rows1, cols1, shifted),
        )
        seen_pairs.add(pair)
        first, second = pair
        if (
            first in ("row", "column")
            and second in ("row", "column")
            and first != second
        ):
            return  # disagreement exhibited
        if "both" in pair:
            return  # dichotomy itself already broken
    raise AssertionError(
        f"no disagreement found among sampled colorings; saw {seen_pairs}"
    )


def test_dichotomy_exact_at_2k_minus_2_on_chain():
    """Control: at 2k-2 colors every sampled chain coloring has both
    gadgets agreeing (Lemma 4.6)."""
    chain = GadgetChain(3, 2)
    rows0 = [chain.row(0, i) for i in range(3)]
    cols0 = [chain.column(0, j) for j in range(3)]
    rows1 = [chain.row(1, i) for i in range(3)]
    cols1 = [chain.column(1, j) for j in range(3)]
    count = 0
    for coloring in proper_colorings(chain.graph, 4, limit=5000):
        shifted = {node: color + 1 for node, color in coloring.items()}
        first = classify_gadget(rows0, cols0, shifted)
        second = classify_gadget(rows1, cols1, shifted)
        assert first == second
        assert first in ("row", "column")
        count += 1
    assert count > 0
