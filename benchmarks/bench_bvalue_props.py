"""Experiment L3.3-3.5 (Figures 2-4): the b-value identities, verified in
bulk and timed.

* Lemma 3.3: every proper 4-cycle has b = 0 (exhaustive).
* Lemma 3.4: every simple rectangle cycle of a randomly properly colored
  grid has b = 0 (randomized mass check).
* Lemma 3.5: the parity law on random proper paths (randomized mass
  check).
"""

import itertools
import random


from repro.analysis.tables import render_table
from repro.core.bvalue import (
    b_value,
    b_value_parity,
    cycle_b_value,
    path_b_value,
    rectangle_cycle,
)
from repro.families.grids import SimpleGrid
from repro.verify.coloring import is_proper


def random_proper_grid_coloring(grid: SimpleGrid, seed: int):
    """A random proper 3-coloring built by randomized greedy over a
    random node order (restarts until greedy succeeds)."""
    rng = random.Random(seed)
    nodes = sorted(grid.graph.nodes())
    while True:
        rng.shuffle(nodes)
        coloring = {}
        ok = True
        for node in nodes:
            used = {
                coloring.get(v) for v in grid.graph.neighbors(node)
            }
            options = [c for c in (1, 2, 3) if c not in used]
            if not options:
                ok = False
                break
            coloring[node] = rng.choice(options)
        if ok:
            assert is_proper(grid.graph, coloring)
            return coloring


def random_proper_path(rng, length):
    colors = [rng.randint(1, 3)]
    for __ in range(length):
        colors.append(rng.choice([c for c in (1, 2, 3) if c != colors[-1]]))
    return colors


def test_lemma_3_3_exhaustive():
    count = 0
    for colors in itertools.product((1, 2, 3), repeat=4):
        ring = list(colors) + [colors[0]]
        if any(a == b for a, b in zip(ring, ring[1:])):
            continue
        assert cycle_b_value(colors) == 0
        count += 1
    print(f"\nLemma 3.3: all {count} proper C4 colorings have b = 0")


def test_lemma_3_4_randomized_mass():
    grid = SimpleGrid(8, 8)
    checked = 0
    for seed in range(5):
        coloring = random_proper_grid_coloring(grid, seed)
        for r1 in range(0, 6, 2):
            for r2 in range(r1 + 1, 8, 2):
                for c1 in range(0, 6, 2):
                    for c2 in range(c1 + 1, 8, 2):
                        cycle = rectangle_cycle(r1, r2, c1, c2)
                        assert b_value(cycle, coloring, cycle=True) == 0
                        checked += 1
    print(f"\nLemma 3.4: {checked} rectangle cycles over 5 random proper "
          f"colorings, all b = 0")


def test_lemma_3_5_randomized_mass():
    rng = random.Random(42)
    rows = []
    for length in (1, 5, 20, 100):
        trials = 500
        for __ in range(trials):
            colors = random_proper_path(rng, length)
            assert path_b_value(colors) % 2 == b_value_parity(
                length, colors[0], colors[-1]
            )
        rows.append([length, trials, "all match"])
    print()
    print("Lemma 3.5 parity law, randomized:")
    print(render_table(["path length", "trials", "result"], rows))


def test_bench_bvalue_evaluation(benchmark):
    rng = random.Random(7)
    colors = random_proper_path(rng, 10_000)
    total = benchmark(lambda: path_b_value(colors))
    assert abs(total) <= 10_000


def test_bench_lemma_3_4_check(benchmark):
    grid = SimpleGrid(8, 8)
    coloring = random_proper_grid_coloring(grid, 3)
    cycle = rectangle_cycle(0, 7, 0, 7)
    result = benchmark(lambda: b_value(cycle, coloring, cycle=True))
    assert result == 0
