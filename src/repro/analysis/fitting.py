"""Least-squares fits of threshold curves to the paper's growth shapes.

Candidate models (all through-origin up to an additive constant):

* ``log``    — y = a·log2(x) + b   (Theorems 1, 4, 5)
* ``sqrt``   — y = a·√x + b        (Theorem 2)
* ``linear`` — y = a·x + b         (Theorem 3)
* ``const``  — y = b

Implemented with plain ``math`` (closed-form simple linear regression on
a transformed x) so the core library stays dependency-free; benchmarks
may use numpy/scipy but don't need to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

_MODELS: Dict[str, Callable[[float], float]] = {
    "log": lambda x: math.log2(x),
    "sqrt": lambda x: math.sqrt(x),
    "linear": lambda x: x,
    "const": lambda x: 0.0,
}


@dataclass
class FitResult:
    """A fitted growth model y ≈ slope·f(x) + intercept."""

    model: str
    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.slope * _MODELS[self.model](x) + self.intercept


def fit_growth(
    xs: Sequence[float], ys: Sequence[float], model: str
) -> FitResult:
    """Least-squares fit of ``ys ≈ slope · f(xs) + intercept``.

    Raises
    ------
    ValueError
        On unknown model names or fewer than two points.
    """
    if model not in _MODELS:
        raise ValueError(f"unknown model {model!r}; pick from {sorted(_MODELS)}")
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    transform = _MODELS[model]
    ts = [transform(x) for x in xs]
    n = len(ts)
    mean_t = sum(ts) / n
    mean_y = sum(ys) / n
    var_t = sum((t - mean_t) ** 2 for t in ts)
    if var_t == 0.0:
        slope = 0.0
        intercept = mean_y
    else:
        cov = sum((t - mean_t) * (y - mean_y) for t, y in zip(ts, ys))
        slope = cov / var_t
        intercept = mean_y - slope * mean_t
    ss_res = sum(
        (y - (slope * t + intercept)) ** 2 for t, y in zip(ts, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return FitResult(model=model, slope=slope, intercept=intercept, r_squared=r_squared)


def best_growth_model(
    xs: Sequence[float],
    ys: Sequence[float],
    candidates: Tuple[str, ...] = ("const", "log", "sqrt", "linear"),
) -> FitResult:
    """The candidate model with the highest R² on the data.

    Ties break toward the *slowest* growth (candidates order), so a flat
    series is reported as ``const`` rather than a zero-slope line.
    """
    fits: List[FitResult] = [fit_growth(xs, ys, model) for model in candidates]
    best = fits[0]
    for fit in fits[1:]:
        if fit.r_squared > best.r_squared + 1e-9:
            best = fit
    return best
