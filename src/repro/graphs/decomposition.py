"""Network decompositions (Ghaffari–Kuhn–Maus, paper introduction).

A *(c, d)-network decomposition* partitions the nodes into clusters of
diameter ≤ d and colors the clusters with c colors so that same-color
clusters are pairwise non-adjacent.  The paper's introduction recounts
how GKM used decompositions to simulate any SLOCAL algorithm in LOCAL,
which (with Rozhoň–Ghaffari's polylog decomposition) makes the
polylog-locality classes of LOCAL and SLOCAL coincide.

This module provides a *sequential* constructor — ball carving for
low-diameter clusters, then greedy coloring of the cluster graph — and
the validity checker.  The construction is centralized (we need the
decomposition as *data* for the LOCAL simulation in
:mod:`repro.models.gkm`, not as a distributed algorithm), and the
measured (c, d) are reported rather than asserted to match any
particular asymptotic: ball carving guarantees cluster (weak) diameter
≤ 2·log2(n), while the color count is whatever greedy needs on the
cluster graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable


@dataclass
class Decomposition:
    """A clustering plus a proper coloring of the cluster graph.

    Attributes
    ----------
    cluster_of:
        node -> cluster index.
    color_of_cluster:
        cluster index -> color (0-based).
    clusters:
        cluster index -> node set.
    """

    cluster_of: Dict[Node, int]
    color_of_cluster: Dict[int, int]
    clusters: List[Set[Node]]

    @property
    def num_colors(self) -> int:
        """The c of the (c, d) guarantee."""
        return 1 + max(self.color_of_cluster.values(), default=-1)

    def color_of(self, node: Node) -> int:
        """The color of the node's cluster."""
        return self.color_of_cluster[self.cluster_of[node]]

    def max_diameter(self, graph: Graph) -> int:
        """The d of the (c, d) guarantee: max *weak* diameter (distance
        measured in the whole graph) over clusters."""
        worst = 0
        for cluster in self.clusters:
            for node in cluster:
                dist = bfs_distances(graph, node)
                worst = max(
                    worst, max(dist.get(other, 0) for other in cluster)
                )
        return worst


def ball_carving_decomposition(graph: Graph) -> Decomposition:
    """Carve low-diameter clusters, then greedy-color the cluster graph.

    Ball carving: repeatedly pick the smallest unassigned node and grow a
    ball around it (within the unassigned part) while each layer at
    least doubles the ball; the ball can stop growing at radius
    ≤ log2(n), so every cluster has radius ≤ log2(n) in the *remaining*
    graph, hence weak diameter ≤ 2·log2(n) in the whole graph.
    """
    remaining: Set[Node] = set(graph.nodes())
    cluster_of: Dict[Node, int] = {}
    clusters: List[Set[Node]] = []
    n = max(1, graph.num_nodes)

    while remaining:
        center = min(remaining, key=repr)
        ball_nodes: Set[Node] = {center}
        frontier: Set[Node] = {center}
        while True:
            next_layer = {
                nbr
                for node in frontier
                for nbr in graph.neighbors(node)
                if nbr in remaining and nbr not in ball_nodes
            }
            # Stop when the next layer no longer grows the ball by at
            # least half its size (the standard doubling argument caps
            # the number of growth steps at log2 n).
            if not next_layer or len(next_layer) < len(ball_nodes):
                break
            ball_nodes |= next_layer
            frontier = next_layer
        index = len(clusters)
        clusters.append(set(ball_nodes))
        for node in ball_nodes:
            cluster_of[node] = index
        remaining -= ball_nodes

    # Greedy-color the cluster graph.
    cluster_neighbors: Dict[int, Set[int]] = {i: set() for i in range(len(clusters))}
    for u, v in graph.edges():
        cu, cv = cluster_of[u], cluster_of[v]
        if cu != cv:
            cluster_neighbors[cu].add(cv)
            cluster_neighbors[cv].add(cu)
    color_of_cluster: Dict[int, int] = {}
    for index in range(len(clusters)):
        used = {
            color_of_cluster[other]
            for other in cluster_neighbors[index]
            if other in color_of_cluster
        }
        color = 0
        while color in used:
            color += 1
        color_of_cluster[index] = color

    return Decomposition(
        cluster_of=cluster_of,
        color_of_cluster=color_of_cluster,
        clusters=clusters,
    )


def check_decomposition(graph: Graph, decomposition: Decomposition) -> Tuple[int, int]:
    """Validate and measure a decomposition; returns (c, d).

    Raises
    ------
    ValueError
        If clusters do not partition the nodes, a cluster is not
        connected inside the graph, or two adjacent clusters share a
        color.
    """
    assigned = set(decomposition.cluster_of)
    if assigned != set(graph.nodes()):
        raise ValueError("clusters do not cover every node exactly")
    for index, cluster in enumerate(decomposition.clusters):
        for node in cluster:
            if decomposition.cluster_of[node] != index:
                raise ValueError("cluster_of disagrees with clusters")
    for u, v in graph.edges():
        cu, cv = decomposition.cluster_of[u], decomposition.cluster_of[v]
        if cu != cv and (
            decomposition.color_of_cluster[cu]
            == decomposition.color_of_cluster[cv]
        ):
            raise ValueError(
                f"adjacent clusters {cu} and {cv} share a color"
            )
    return decomposition.num_colors, decomposition.max_diameter(graph)


def carving_diameter_bound(n: int) -> int:
    """The weak-diameter guarantee of ball carving: 2·ceil(log2 n)."""
    return 2 * math.ceil(math.log2(max(2, n)))
