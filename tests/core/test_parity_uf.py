"""Tests for the parity union-find."""

from repro.core.parity_uf import ParityUnionFind


def test_singletons():
    uf = ParityUnionFind()
    uf.add("a")
    root, parity = uf.find("a")
    assert root == "a"
    assert parity == 0
    assert uf.size("a") == 1
    assert not uf.is_odd("a")


def test_add_idempotent():
    uf = ParityUnionFind()
    uf.add(1)
    uf.union_opposite(1, 2) if 2 in uf else uf.add(2)
    uf.add(1)
    assert uf.size(1) == 1


def test_edge_forces_opposite_parity():
    uf = ParityUnionFind()
    for x in (1, 2):
        uf.add(x)
    uf.union_opposite(1, 2)
    __, p1 = uf.find(1)
    __, p2 = uf.find(2)
    assert p1 != p2


def test_even_cycle_consistent():
    uf = ParityUnionFind()
    for x in range(4):
        uf.add(x)
    for x in range(4):
        uf.union_opposite(x, (x + 1) % 4)
    assert not uf.is_odd(0)
    parities = [uf.find(x)[1] for x in range(4)]
    assert parities[0] != parities[1]
    assert parities[0] == parities[2]


def test_odd_cycle_detected():
    uf = ParityUnionFind()
    for x in range(5):
        uf.add(x)
    for x in range(5):
        uf.union_opposite(x, (x + 1) % 5)
    assert uf.is_odd(3)


def test_path_parities_match_distance():
    uf = ParityUnionFind()
    for x in range(10):
        uf.add(x)
    for x in range(9):
        uf.union_opposite(x, x + 1)
    base = uf.find(0)[1]
    for x in range(10):
        assert uf.find(x)[1] == (base + x) % 2


def test_sizes_accumulate():
    uf = ParityUnionFind()
    for x in range(6):
        uf.add(x)
    uf.union_opposite(0, 1)
    uf.union_opposite(2, 3)
    uf.union_opposite(1, 2)
    assert uf.size(0) == 4
    assert uf.size(5) == 1


def test_oddness_propagates_through_merges():
    uf = ParityUnionFind()
    for x in range(6):
        uf.add(x)
    # Odd triangle on 0,1,2.
    uf.union_opposite(0, 1)
    uf.union_opposite(1, 2)
    uf.union_opposite(2, 0)
    # Merge the clean component {3,4}.
    uf.union_opposite(3, 4)
    uf.union_opposite(2, 3)
    assert uf.is_odd(4)
    assert not uf.is_odd(5)


def test_contains():
    uf = ParityUnionFind()
    uf.add("x")
    assert "x" in uf
    assert "y" not in uf
