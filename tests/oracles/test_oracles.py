"""Tests for the partition oracles (Definition 1.4 implementations)."""

import pytest

from repro.families.grids import SimpleGrid
from repro.families.ktree import random_ktree
from repro.families.triangular import TriangularGrid
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.oracles import (
    BipartiteOracle,
    BruteForceOracle,
    CliqueChainOracle,
    KTreeOracle,
    OracleError,
    TriangularOracle,
)


def partitions_equal_up_to_permutation(parts_a, parts_b, nodes):
    """Whether two part assignments induce the same partition of nodes."""
    mapping = {}
    for node in nodes:
        pa, pb = parts_a[node], parts_b[node]
        if pa in mapping:
            if mapping[pa] != pb:
                return False
        else:
            mapping[pa] = pb
    return len(set(mapping.values())) == len(mapping)


class TestBipartiteOracle:
    def test_matches_grid_bipartition(self):
        grid = SimpleGrid(4, 5)
        oracle = BipartiteOracle()
        component = set(grid.graph.nodes())
        parts = oracle.infer(grid.graph, component)
        canonical = {v: grid.bipartition_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_fragment_of_grid(self):
        grid = SimpleGrid(5, 5)
        oracle = BipartiteOracle()
        component = ball(grid.graph, (2, 2), 2)
        parts = oracle.infer(grid.graph, component)
        canonical = {v: grid.bipartition_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_rejects_odd_cycle(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        with pytest.raises(OracleError, match="not bipartite"):
            BipartiteOracle().infer(g, {0, 1, 2})

    def test_rejects_disconnected_component(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        with pytest.raises(OracleError, match="not connected"):
            BipartiteOracle().infer(g, {0, 1, 2, 3})

    def test_rejects_empty(self):
        with pytest.raises(OracleError):
            BipartiteOracle().infer(Graph(), set())


class TestTriangularOracle:
    def test_matches_canonical_tripartition(self):
        tri = TriangularGrid(8)
        oracle = TriangularOracle()
        component = set(tri.graph.nodes())
        parts = oracle.infer(tri.graph, component)
        canonical = {v: tri.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_ball_fragment(self):
        tri = TriangularGrid(10)
        oracle = TriangularOracle()
        component = ball(tri.graph, (3, 3), 2)
        parts = oracle.infer(tri.graph, component)
        canonical = {v: tri.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_bridge_fragment_inferred_through_radius_one(self):
        """Two balls joined by a bare edge: the triangles around the
        bridging edge live in B(C, 1) and carry the inference across —
        the executable Figure 1 argument."""
        tri = TriangularGrid(14)
        oracle = TriangularOracle()
        left = ball(tri.graph, (2, 2), 1)
        right = ball(tri.graph, (2 + 5, 2), 1)
        bridge = {(2 + 3, 2)}  # midpoint connecting the two balls via edges
        component = left | right | bridge | {(2 + 2, 2), (2 + 4, 2)}
        sub = tri.graph.induced_subgraph(component)
        from repro.graphs.traversal import is_connected

        assert is_connected(sub)
        parts = oracle.infer(tri.graph, component)
        canonical = {v: tri.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_agrees_with_brute_force(self):
        tri = TriangularGrid(5)
        component = ball(tri.graph, (1, 1), 1)
        fast = TriangularOracle().infer(tri.graph, component)
        brute = BruteForceOracle(num_parts=3, radius=1).infer(tri.graph, component)
        assert partitions_equal_up_to_permutation(fast, brute, component)

    def test_rejects_triangle_free_fragment(self):
        grid = SimpleGrid(4, 4)  # no triangles at all
        with pytest.raises(OracleError, match="no triangle"):
            TriangularOracle().infer(grid.graph, {(1, 1), (1, 2)})


class TestCliqueChainOracle:
    def test_ktree_full_graph(self):
        tree = random_ktree(2, 30, seed=4)
        oracle = KTreeOracle(2)
        component = set(tree.graph.nodes())
        parts = oracle.infer(tree.graph, component)
        canonical = {v: tree.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_ktree_fragment(self):
        tree = random_ktree(3, 30, seed=6)
        oracle = KTreeOracle(3)
        component = ball(tree.graph, 10, 2)
        parts = oracle.infer(tree.graph, component)
        canonical = {v: tree.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_agrees_with_brute_force_on_small_ktree(self):
        tree = random_ktree(2, 10, seed=1)
        component = ball(tree.graph, 5, 1)
        fast = KTreeOracle(2).infer(tree.graph, component)
        brute = BruteForceOracle(num_parts=3, radius=1).infer(tree.graph, component)
        assert partitions_equal_up_to_permutation(fast, brute, component)

    def test_hierarchy_fragment(self):
        from repro.families.hierarchy import Hierarchy

        h = Hierarchy(3, 4, 4)
        oracle = CliqueChainOracle(3, 3)
        component = ball(h.graph, (2, (1, 1)), 2)
        parts = oracle.infer(h.graph, component)
        canonical = {v: h.canonical_color(v) for v in component}
        assert partitions_equal_up_to_permutation(parts, canonical, component)

    def test_rejects_clique_free_region(self):
        grid = SimpleGrid(3, 3)
        with pytest.raises(OracleError, match="no 3-clique"):
            CliqueChainOracle(3, 1).infer(grid.graph, {(0, 0), (0, 1)})

    def test_validation(self):
        with pytest.raises(ValueError):
            CliqueChainOracle(1, 1)
        with pytest.raises(ValueError):
            CliqueChainOracle(3, -1)
        with pytest.raises(ValueError):
            KTreeOracle(0)


class TestBruteForceOracle:
    def test_detects_non_unique_partition(self):
        """A path is 3-colorable in many partition-inequivalent ways."""
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        with pytest.raises(OracleError, match="different partitions"):
            BruteForceOracle(num_parts=3, radius=0).infer(g, {0, 1, 2, 3})

    def test_unique_partition_bipartite(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        parts = BruteForceOracle(num_parts=2, radius=0).infer(g, {0, 1, 2, 3})
        assert parts[0] == parts[2]
        assert parts[1] == parts[3]
        assert parts[0] != parts[1]

    def test_uncolorable_neighborhood(self):
        triangle = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        with pytest.raises(OracleError, match="no proper"):
            BruteForceOracle(num_parts=2, radius=0).infer(triangle, {0, 1, 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            BruteForceOracle(num_parts=1, radius=0)
        with pytest.raises(ValueError):
            BruteForceOracle(num_parts=3, radius=-1)


class TestNormalization:
    def test_parts_are_zero_based_and_deterministic(self):
        tri = TriangularGrid(6)
        oracle = TriangularOracle()
        component = ball(tri.graph, (1, 1), 1)
        parts_one = oracle.infer(tri.graph, component)
        parts_two = oracle.infer(tri.graph, component)
        assert parts_one == parts_two
        assert min(parts_one.values()) == 0
