"""The oracle interface of Section 5.1.2.

An oracle for :math:`\\mathcal{L}_{k,\\ell}` takes a connected node set
``C`` inside the algorithm's view graph and returns the unique
k-partition of ``C`` (parts ``0 .. k-1``, normalized deterministically;
the *labeling* of parts carries no meaning — types handle that).  The
oracle may inspect the view up to distance ``radius`` (= ℓ) beyond ``C``,
which the model prices at ℓ extra locality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Set

from repro.graphs.graph import Graph
from repro.robustness.errors import ReproError

Node = Hashable


class OracleError(ReproError):
    """The partition could not be inferred (wrong family, or the
    neighborhood genuinely does not determine it).

    A :class:`~repro.robustness.errors.ReproError`, so supervised sweeps
    and :func:`~repro.robustness.retry.retry_with_reseed` classify oracle
    failures as structured (retryable) rather than fatal."""


class PartitionOracle(ABC):
    """Infers the unique k-partition of connected view fragments."""

    #: Number of parts (the k of the k-partite family).
    num_parts: int
    #: The inference radius ℓ of Definition 1.4.
    radius: int

    @abstractmethod
    def infer(self, graph: Graph, component: Set[Node]) -> Dict[Node, int]:
        """The partition of ``component`` into parts ``0 .. num_parts-1``.

        ``component`` must induce a connected subgraph of ``graph``; the
        oracle may read ``graph`` up to ``radius`` hops beyond it.  The
        returned dict covers at least every node of ``component`` (it may
        include further nodes whose parts were inferred along the way).

        Raises
        ------
        OracleError
            If the inference fails.
        """

    def _normalize(self, parts: Dict[Node, int]) -> Dict[Node, int]:
        """Relabel parts so the smallest node gets part 0, the next new
        part seen (in node order) gets 1, and so on — a deterministic
        function of the partition itself."""
        relabel: Dict[int, int] = {}
        for node in sorted(parts, key=repr):
            part = parts[node]
            if part not in relabel:
                relabel[part] = len(relabel)
        return {node: relabel[part] for node, part in parts.items()}
