"""Computation models: LOCAL, SLOCAL, and Online-LOCAL simulators.

The Online-LOCAL simulator (:mod:`repro.models.online_local`) runs a
deterministic algorithm against a *fixed* host graph: the adversary picks
the reveal order, the algorithm sees the abstract induced subgraph
:math:`G_i` of the union of revealed balls.

The adaptive instances (:mod:`repro.models.adaptive`) implement the
stronger adversary the lower-bound proofs need: the host graph is
committed lazily, and disconnected fragments may be reflected, transposed,
or translated (by family automorphisms) before their relative placement is
fixed.  Consistency — every view shown must be an induced subgraph of the
final host — is machine-checked by replay.
"""

from repro.models.base import (
    AlgorithmError,
    AlgorithmView,
    Color,
    OnlineAlgorithm,
    ViewTracker,
)
from repro.models.online_local import OnlineLocalSimulator
from repro.models.local import LocalAlgorithm, LocalSimulator
from repro.models.slocal import SLocalAlgorithm, SLocalSimulator
from repro.models.simulation import LocalAsOnline, SLocalAsOnline
from repro.models.dynamic_local import (
    DynamicAlgorithm,
    DynamicLocalSimulator,
    DynamicViolation,
)
from repro.models.message_passing import (
    MessagePassingAlgorithm,
    SynchronousNetwork,
)

__all__ = [
    "AlgorithmError",
    "AlgorithmView",
    "Color",
    "OnlineAlgorithm",
    "ViewTracker",
    "OnlineLocalSimulator",
    "LocalAlgorithm",
    "LocalSimulator",
    "SLocalAlgorithm",
    "SLocalSimulator",
    "LocalAsOnline",
    "SLocalAsOnline",
    "DynamicAlgorithm",
    "DynamicLocalSimulator",
    "DynamicViolation",
    "MessagePassingAlgorithm",
    "SynchronousNetwork",
]
