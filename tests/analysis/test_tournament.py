"""Tests for the tournament harness."""

from repro.analysis.tournament import (
    TournamentRow,
    clean_sweep,
    default_adversaries,
    default_victims,
    run_tournament,
)
from repro.core.baselines import GreedyOnlineColorer


def test_defaults_shape():
    assert set(default_victims()) == {"greedy", "akbari", "local-canonical"}
    assert len(default_adversaries(1)) == 6


def test_subset_tournament_clean_sweep():
    """A reduced tournament (fast) must still be a clean sweep."""
    adversaries = {
        name: play
        for name, play in default_adversaries(1).items()
        if name in ("theorem1-grid", "theorem2-torus")
    }
    victims = {"greedy": GreedyOnlineColorer}
    rows = run_tournament(locality=1, victims=victims, adversaries=adversaries)
    assert len(rows) == 2
    assert clean_sweep(rows)
    assert all(isinstance(row, TournamentRow) for row in rows)


def test_clean_sweep_predicate():
    won = TournamentRow("a", "v", 1, True, "monochromatic-edge")
    lost = TournamentRow("a", "v", 1, False, "survived")
    assert clean_sweep([won, won])
    assert not clean_sweep([won, lost])
