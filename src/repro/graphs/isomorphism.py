"""Backtracking graph isomorphism for small graphs.

Used by the test suite and by the adaptive-instance consistency checker
(:mod:`repro.models.adaptive`) to confirm that the views shown to an
algorithm embed into the committed host graph.  The implementation is a
straightforward degree-refined backtracking search — adequate for the
view-sized graphs (tens to a few thousand nodes with strong degree
structure) that appear in this library.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.graphs.graph import Graph

Node = Hashable


def _degree_signature(graph: Graph, node: Node) -> tuple:
    """A cheap invariant: (degree, sorted multiset of neighbor degrees)."""
    nbr_degrees = sorted(graph.degree(v) for v in graph.neighbors(node))
    return (graph.degree(node), tuple(nbr_degrees))


def find_isomorphism(g1: Graph, g2: Graph) -> Optional[Dict[Node, Node]]:
    """An isomorphism ``g1 -> g2`` as a node mapping, or None.

    The search orders ``g1``'s nodes to keep the partial mapping connected
    when possible, which prunes aggressively on the structured graphs used
    in this library.
    """
    if g1.num_nodes != g2.num_nodes or g1.num_edges != g2.num_edges:
        return None

    sig1: Dict[Node, tuple] = {v: _degree_signature(g1, v) for v in g1.nodes()}
    sig2: Dict[Node, tuple] = {v: _degree_signature(g2, v) for v in g2.nodes()}
    if sorted(sig1.values()) != sorted(sig2.values()):
        return None

    # Order g1's nodes: rarest signature first, then prefer nodes adjacent
    # to already-ordered nodes (connectivity heuristic).
    sig_counts: Dict[tuple, int] = {}
    for sig in sig1.values():
        sig_counts[sig] = sig_counts.get(sig, 0) + 1
    order: List[Node] = []
    placed = set()
    remaining = set(g1.nodes())
    while remaining:
        adjacent = {u for u in remaining if any(v in placed for v in g1.neighbors(u))}
        pool = adjacent if adjacent else remaining
        nxt = min(pool, key=lambda u: (sig_counts[sig1[u]], repr(u)))
        order.append(nxt)
        placed.add(nxt)
        remaining.remove(nxt)

    candidates: Dict[tuple, List[Node]] = {}
    for v, sig in sig2.items():
        candidates.setdefault(sig, []).append(v)

    mapping: Dict[Node, Node] = {}
    used: set = set()

    def consistent(u: Node, w: Node) -> bool:
        """Mapping u->w must preserve adjacency with all mapped nodes."""
        for mapped_u, mapped_w in mapping.items():
            if g1.has_edge(u, mapped_u) != g2.has_edge(w, mapped_w):
                return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        u = order[index]
        for w in candidates[sig1[u]]:
            if w in used or not consistent(u, w):
                continue
            mapping[u] = w
            used.add(w)
            if backtrack(index + 1):
                return True
            del mapping[u]
            used.remove(w)
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def is_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Whether the two graphs are isomorphic."""
    return find_isomorphism(g1, g2) is not None
