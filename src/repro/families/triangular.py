"""Triangular grids (paper Section 1, Figure 1).

The triangular grid of side length ``d`` has node set
``{(x, y) : 0 <= x + y <= d}`` and edges between ``(x, y)`` and
``(x', y')`` when ``|x-x'| + |y-y'| = 1`` or ``x-x' = y-y' ∈ {-1, 1}``.

Triangular grids are 3-partite, admit a *unique* 3-coloring up to
permutation, and that coloring is locally inferable with radius 1
(Definition 1.4) — the paper's flagship example of
:math:`\\mathcal{L}_{3,1}`.  The canonical tripartition is
``(x + y) mod 3``: every edge changes ``x + y`` by 1 or 2, never by a
multiple of 3.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.graphs.graph import Graph

TriNode = Tuple[int, int]


class TriangularGrid:
    """The triangular grid of side length ``d``.

    Deviation from the paper's literal definition: the two hypotenuse
    corners ``(0, d)`` and ``(d, 0)`` have degree 1 under the paper's
    edge rule (the anti-diagonal is not an edge direction), so they lie
    in no triangle and their color is *not* uniquely inferable — the
    Figure 1 argument implicitly assumes every node lies in a triangle.
    We therefore exclude those two degenerate nodes by default; pass
    ``include_degenerate_corners=True`` to get the literal node set.
    """

    def __init__(self, side: int, include_degenerate_corners: bool = False) -> None:
        if side < 2 and not include_degenerate_corners:
            raise ValueError(
                "side length must be at least 2 (removing the degenerate "
                "corners of a side-1 grid leaves a single node)"
            )
        if side < 1:
            raise ValueError(f"side length must be positive, got {side}")
        self.side = side
        self.include_degenerate_corners = include_degenerate_corners
        self.graph = Graph(nodes=self._iter_nodes())
        for x, y in self._iter_nodes():
            # Right, up, and the (+1, +1) diagonal cover every edge once.
            for dx, dy in ((1, 0), (0, 1), (1, 1)):
                other = (x + dx, y + dy)
                if other in self.graph:
                    self.graph.add_edge((x, y), other)

    def _iter_nodes(self) -> Iterator[TriNode]:
        skipped = (
            set()
            if self.include_degenerate_corners
            else {(0, self.side), (self.side, 0)}
        )
        for x in range(self.side + 1):
            for y in range(self.side + 1 - x):
                if (x, y) not in skipped:
                    yield (x, y)

    @property
    def num_nodes(self) -> int:
        """``(d+1)(d+2)/2`` nodes, minus the two excluded corners."""
        return self.graph.num_nodes

    def canonical_color(self, node: TriNode) -> int:
        """The canonical tripartition ``(x + y) mod 3`` (colors 0, 1, 2)."""
        x, y = node
        return (x + y) % 3

    def triangles(self) -> List[Tuple[TriNode, TriNode, TriNode]]:
        """All unit triangles (3-cliques), each listed once.

        Each lattice cell contributes an "upward" triangle
        ``{(x,y), (x+1,y), (x+1,y+1)}`` and a "downward" triangle
        ``{(x,y), (x,y+1), (x+1,y+1)}`` when all corners exist.
        """
        result: List[Tuple[TriNode, TriNode, TriNode]] = []
        for x, y in self._iter_nodes():
            up = ((x, y), (x + 1, y), (x + 1, y + 1))
            down = ((x, y), (x, y + 1), (x + 1, y + 1))
            for tri in (up, down):
                if all(corner in self.graph for corner in tri):
                    result.append(tri)
        return result

    def __repr__(self) -> str:
        return f"TriangularGrid(side={self.side}, n={self.num_nodes})"
