"""Graph families used by the paper.

* :mod:`repro.families.grids` — simple, cylindrical, and toroidal grids
  (Section 2.1).
* :mod:`repro.families.triangular` — triangular grids (Section 1,
  Definition of :math:`\\mathcal{L}_{k,\\ell}` examples).
* :mod:`repro.families.ktree` — k-trees and their clique trees.
* :mod:`repro.families.gadgets` — the gadget :math:`A(k)` and the hard
  instance :math:`G^*` of Section 4.
* :mod:`repro.families.hierarchy` — the duplicate-node hierarchy
  :math:`G_k` of Section 5.2.
* :mod:`repro.families.random_graphs` — seeded random instances for tests
  and benchmarks.
"""

from repro.families.grids import CylindricalGrid, SimpleGrid, ToroidalGrid
from repro.families.triangular import TriangularGrid
from repro.families.ktree import KTree, deterministic_ktree, random_ktree
from repro.families.gadgets import Gadget, GadgetChain
from repro.families.hierarchy import Hierarchy

__all__ = [
    "SimpleGrid",
    "CylindricalGrid",
    "ToroidalGrid",
    "TriangularGrid",
    "KTree",
    "deterministic_ktree",
    "random_ktree",
    "Gadget",
    "GadgetChain",
    "Hierarchy",
]
