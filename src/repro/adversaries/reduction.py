"""The Lemma 5.7 reduction: lower bounds for the hierarchy :math:`G_k`.

Given a black-box Online-LOCAL algorithm A that (k+2)-colors
:math:`G_{k+1}`, the wrapper :class:`HierarchyReduction` is an algorithm
A' that (k+1)-colors :math:`G_k` with the *same* locality:

* When node ``u`` of G_k is revealed, A' reveals ``u`` in a synthesized
  G_{k+1} instance (every seen node gains a duplicate adjacent to it and
  its seen neighbors) and asks A for its color ``c``.
* If ``c ≤ k+1``, A' outputs ``c``; if ``c = k+2``, A' reveals the
  duplicate ``u*`` to A and outputs the duplicate's color.

Distances in G_{k+1} equal distances in G_k (a duplicate sits at the same
distance as its original), so the synthesized balls are exactly the balls
A would see on the real G_{k+1} — the simulation is faithful, and a
proper run of A yields a proper run of A'.  Chaining the wrapper down to
``k = 2`` (:func:`reduce_to_grid`) turns any (k+1)-colorer of G_k into a
3-colorer of the grid, which the Theorem 1 adversary then defeats — the
executable form of Theorem 5.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.models.base import (
    AlgorithmView,
    Color,
    NodeId,
    OnlineAlgorithm,
    ViewTracker,
)

# Synthetic node labels for the simulated G_{k+1} instance.
_BASE = "b"
_DUP = "d"


class HierarchyReduction(OnlineAlgorithm):
    """A' built from a black-box A per the proof of Lemma 5.7."""

    def __init__(self, inner: OnlineAlgorithm) -> None:
        self.inner = inner
        self.name = f"reduced({inner.name})"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        # A colors G_{k+1}: twice the nodes, one more color.
        self._tracker = ViewTracker(
            self.inner,
            n=2 * n,
            locality=locality,
            num_colors=num_colors + 1,
        )
        self._known: set = set()

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        self._sync(view)
        scratch = self.num_colors + 1
        color = self._tracker.reveal((_BASE, target))
        if color == scratch:
            color = self._tracker.reveal((_DUP, target))
            if color == scratch:
                # A colored both u and u* with k+2 — already improper on
                # its side; play a (losing) legal color and move on.
                color = 1
        return {target: color}

    def _sync(self, view: AlgorithmView) -> None:
        """Mirror the G_k view into the synthetic G_{k+1} view.

        For every newly seen node ``u``: add base and duplicate nodes,
        the edge u*-u, and for every seen edge {u, v} the edges
        u-v, u*-v, u-v* (duplicates are pairwise non-adjacent).
        """
        new_nodes = [u for u in view.graph.nodes() if u not in self._known]
        synthetic_nodes = []
        synthetic_edges = []
        for u in new_nodes:
            synthetic_nodes.append((_BASE, u))
            synthetic_nodes.append((_DUP, u))
            synthetic_edges.append(((_BASE, u), (_DUP, u)))
        self._known.update(new_nodes)
        for u in new_nodes:
            for v in view.graph.neighbors(u):
                if v in self._known:
                    synthetic_edges.append(((_BASE, u), (_BASE, v)))
                    synthetic_edges.append(((_DUP, u), (_BASE, v)))
                    synthetic_edges.append(((_BASE, u), (_DUP, v)))
        self._tracker.extend(synthetic_nodes, synthetic_edges)

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    def synthetic_coloring(self) -> Mapping[Tuple[str, NodeId], Color]:
        """A's coloring of the synthesized G_{k+1} instance."""
        return dict(self._tracker.colors)


def reduce_to_grid(algorithm: OnlineAlgorithm, k: int) -> OnlineAlgorithm:
    """Chain HierarchyReduction from G_k down to the grid G_2.

    ``algorithm`` must be a (k+1)-colorer of G_k; the result is a
    3-colorer of the simple grid with the same locality — run the
    Theorem 1 adversary on it to realize Theorem 5.
    """
    if k < 2:
        raise ValueError(f"the hierarchy starts at k = 2, got {k}")
    current = algorithm
    for __ in range(k - 2):
        current = HierarchyReduction(current)
    return current
