"""End-to-end tests for the serving tier: a real ColoringServer on an
ephemeral port, real campaigns through the engine, raw asyncio HTTP
clients (no third-party client library, same as production)."""

import asyncio
import json

from repro.analysis.store import ResultStore
from repro.api import SubmitRequest
from repro.server import ColoringServer

#: The one-game sweep every test submits: fast and deterministic.
TINY_SPEC = {
    "version": 1,
    "kind": "sweep",
    "name": "server-tiny",
    "adversaries": [{"name": "theorem1-grid"}],
    "victims": ["greedy"],
    "localities": [0, 1],
    "timeout": 10.0,
}


def submit_payload(spec=None, **options):
    return {"version": 1, "spec": dict(spec or TINY_SPEC), **options}


async def http(port, method, path, payload=None, headers=None):
    """One JSON request against the server; returns (status, headers,
    parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for key, value in (headers or {}).items():
        head += f"{key}: {value}\r\n"
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode().split("\r\n")
    status = int(lines[0].split()[1])
    response_headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        response_headers[key.strip().lower()] = value.strip()
    parsed = json.loads(body_raw) if body_raw.strip() else None
    return status, response_headers, parsed


async def wait_for_state(port, campaign_id, states=("done", "failed"),
                         timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, _, handle = await http(
            port, "GET", f"/v1/campaigns/{campaign_id}"
        )
        assert status == 200
        if handle["state"] in states:
            return handle
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"campaign stuck in {handle['state']}")
        await asyncio.sleep(0.05)


async def read_sse_until(port, path, stop_event, timeout=30.0):
    """Collect SSE records from ``path`` until one named ``stop_event``
    arrives (or the stream closes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    records = []
    event = {}

    async def collect():
        while True:
            line = (await reader.readline()).decode().rstrip("\n")
            if not line and not event:
                continue
            if not line:  # blank line = end of one SSE message
                records.append(dict(event))
                if event.get("event") == stop_event:
                    return
                event.clear()
                continue
            if line.startswith(":"):
                continue
            key, _, value = line.partition(": ")
            event[key] = value

    try:
        await asyncio.wait_for(collect(), timeout)
    finally:
        writer.close()
        await writer.wait_closed()
    return records


# Each test runs one asyncio.run() with the server and its clients
# inside, so the loop owns every socket and task it creates.


def test_submit_sse_rows_end_to_end(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            status, _, handle = await http(
                server.port, "POST", "/v1/campaigns", submit_payload()
            )
            assert status == 202
            assert handle["state"] in ("queued", "running")
            assert handle["kind"] == "sweep"
            campaign_id = handle["id"]
            assert campaign_id == SubmitRequest.from_payload(
                submit_payload()).campaign_id()

            records = await read_sse_until(
                server.port, f"/v1/campaigns/{campaign_id}/events", "done"
            )
            names = [record["event"] for record in records]
            assert names[0] == "queued"
            assert "running" in names
            assert "progress" in names
            done = json.loads(records[-1]["data"])
            assert done["played"] == 2 and done["total"] == 2
            # ids are monotonic (the SSE replay/dedupe cursor)
            ids = [int(record["id"]) for record in records]
            assert ids == sorted(ids)

            final = await wait_for_state(server.port, campaign_id)
            assert final["state"] == "done"
            assert final["done"] == 2 and final["total"] == 2
            assert final["played"] == 2 and final["deduped"] == 0

            # Deterministic pagination: two one-row pages.
            status, _, page1 = await http(
                server.port, "GET",
                f"/v1/campaigns/{campaign_id}/rows?limit=1",
            )
            assert status == 200
            assert page1["total"] == 2 and page1["next_offset"] == 1
            status, _, page2 = await http(
                server.port, "GET",
                f"/v1/campaigns/{campaign_id}/rows?offset=1&limit=1",
            )
            assert page2["next_offset"] is None
            rows = page1["rows"] + page2["rows"]
            assert [row["locality"] for row in rows] == [0, 1]

            # Point lookup round-trips through the result endpoint.
            digest = rows[0]["spec_hash"]
            status, _, row = await http(
                server.port, "GET", f"/v1/results/{digest}"
            )
            assert status == 200 and row == rows[0]
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_concurrent_identical_submissions_single_flight(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            results = await asyncio.gather(
                http(server.port, "POST", "/v1/campaigns", submit_payload()),
                http(server.port, "POST", "/v1/campaigns", submit_payload()),
            )
            statuses = sorted(status for status, _, _ in results)
            assert statuses == [200, 202]  # one created, one coalesced
            ids = {handle["id"] for _, _, handle in results}
            assert len(ids) == 1
            campaign_id = ids.pop()
            final = await wait_for_state(server.port, campaign_id)
            assert final["state"] == "done"
        finally:
            await server.stop()

        # The ledger is the proof: ONE run, which played everything;
        # the coalesced submission triggered no second run at all.
        runs = ResultStore(tmp_path / "store").runs()
        assert len(runs) == 1
        assert runs[0]["played"] == 2 and runs[0]["deduped"] == 0

    asyncio.run(scenario())


def test_resubmission_after_completion_dedupes_via_store(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            _, _, first = await http(
                server.port, "POST", "/v1/campaigns", submit_payload()
            )
            await wait_for_state(server.port, first["id"])
            status, _, second = await http(
                server.port, "POST", "/v1/campaigns", submit_payload()
            )
            assert status == 202  # a new job (the first one finished) ...
            final = await wait_for_state(server.port, second["id"])
            # ... that replayed nothing: the store answered every game.
            assert final["played"] == 0 and final["deduped"] == 2
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_rate_limit_429_per_client(tmp_path):
    async def scenario():
        server = ColoringServer(
            tmp_path / "store", port=0, rate=1.0, burst=2
        )
        await server.start()
        try:
            fake = "ab" * 32
            hog = {"X-Client-Id": "hog"}
            for _ in range(2):
                status, _, _ = await http(
                    server.port, "GET", f"/v1/campaigns/{fake}",
                    headers=hog,
                )
                assert status == 404  # admitted (spends a token)
            status, headers, body = await http(
                server.port, "GET", f"/v1/campaigns/{fake}", headers=hog
            )
            assert status == 429
            assert body["code"] == "rate-limited"
            assert int(headers["retry-after"]) >= 1
            # Another client is unaffected, and probe/scrape paths are
            # exempt even for the throttled client.
            status, _, _ = await http(
                server.port, "GET", f"/v1/campaigns/{fake}",
                headers={"X-Client-Id": "other"},
            )
            assert status == 404
            status, _, health = await http(
                server.port, "GET", "/healthz", headers=hog
            )
            assert status == 200 and health["ok"] is True
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_validation_errors_are_structured(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            cases = [
                # (payload, expected ErrorBody code)
                ({"version": 9, "spec": TINY_SPEC}, "unsupported-version"),
                (submit_payload({**TINY_SPEC, "version": 9}),
                 "unsupported-version"),
                (submit_payload({**TINY_SPEC, "mystery": 1}), "bad-spec"),
                (submit_payload(workers=0), "bad-spec"),
                ({"version": 1}, "bad-spec"),
            ]
            for payload, code in cases:
                status, _, body = await http(
                    server.port, "POST", "/v1/campaigns", payload
                )
                assert status == 400, (payload, body)
                assert body["code"] == code, (payload, body)
            # Not-JSON body and unknown routes are structured too.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /v1/campaigns HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 3\r\n\r\nnop"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            assert b'"bad-request"' in raw
            status, _, body = await http(server.port, "GET", "/nope")
            assert status == 404 and body["code"] == "not-found"
            status, _, body = await http(
                server.port, "DELETE", "/v1/campaigns"
            )
            assert status == 405 and body["code"] == "method-not-allowed"
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_metrics_scrape_and_healthz(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            _, _, handle = await http(
                server.port, "POST", "/v1/campaigns", submit_payload()
            )
            await wait_for_state(server.port, handle["id"])
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            raw = (await reader.read()).decode()
            writer.close()
            await writer.wait_closed()
            assert "text/plain" in raw
            assert "repro_server_requests" in raw
            assert "repro_server_submissions" in raw
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_drain_rejects_new_submissions(tmp_path):
    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0,
                                drain_grace=5.0)
        await server.start()
        server.request_drain()
        status, _, body = await http(
            server.port, "POST", "/v1/campaigns", submit_payload()
        )
        assert status == 503
        assert body["code"] == "draining"
        await asyncio.wait_for(server._stopped.wait(), 10.0)

    asyncio.run(scenario())


def test_stored_campaign_visible_after_offline_run(tmp_path):
    """A campaign run by the engine directly (an earlier server life,
    or the CLI) is queryable: state "stored", rows paginate."""
    from repro.api import run_campaign

    request = SubmitRequest.from_payload(submit_payload())
    run_campaign(request, tmp_path / "store")

    async def scenario():
        server = ColoringServer(tmp_path / "store", port=0, rate=0)
        await server.start()
        try:
            campaign_id = request.campaign_id()
            status, _, handle = await http(
                server.port, "GET", f"/v1/campaigns/{campaign_id}"
            )
            assert status == 200
            assert handle["state"] == "stored"
            assert handle["done"] == 2 and handle["total"] == 2
            status, _, page = await http(
                server.port, "GET", f"/v1/campaigns/{campaign_id}/rows"
            )
            assert status == 200 and page["total"] == 2
            # No live job means no event stream for it.
            status, _, body = await http(
                server.port, "GET", f"/v1/campaigns/{campaign_id}/events"
            )
            assert status == 404 and body["code"] == "not-found"
        finally:
            await server.stop()

    asyncio.run(scenario())
