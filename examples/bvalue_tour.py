#!/usr/bin/env python3
"""A guided tour of the paper's b-value machinery (Figures 2-4).

The b-value of a directed path counts the imbalance between
3→2→…→1→3 and 3→1→…→2→3 crossings of color-3 "barriers" — the potential
the adversary pumps up to defeat small-locality algorithms.  This script
walks through the definitions and the three lemmas with concrete numbers.
"""

import itertools

from repro.core.bvalue import (
    a_value,
    b_value_parity,
    cycle_b_value,
    path_b_value,
)


def main() -> None:
    print("Definition 3.1 — a-values (nonzero only on 1-2 edges):")
    for u, v in itertools.product((1, 2, 3), repeat=2):
        if u != v:
            print(f"  a({u},{v}) = {a_value(u, v):+d}")
    print()

    print("Figure 3 — a closable path (b = 0):")
    fig3 = [3, 2, 1, 2, 1, 2, 3]
    print(f"  colors {fig3}  ->  b = {path_b_value(fig3)}")
    print("  (the 1-2 region can be enclosed by a single ring of 3s)")
    print()

    print("Figure 4 — an unclosable path (b = 1):")
    fig4 = [3, 2, 1, 2, 1, 3]
    print(f"  colors {fig4}  ->  b = {path_b_value(fig4)}")
    print("  (any cycle containing it must cross back with b = -1)")
    print()

    print("Lemma 3.3 — every proper 4-cycle cancels:")
    shown = 0
    for colors in itertools.product((1, 2, 3), repeat=4):
        ring = list(colors) + [colors[0]]
        if any(a == b for a, b in zip(ring, ring[1:])):
            continue
        if shown < 4:
            print(f"  cycle {list(colors)}  ->  b = {cycle_b_value(colors)}")
        shown += 1
    print(f"  ... ({shown} proper C4 colorings, all b = 0)")
    print()

    print("Lemma 3.5 — parity is pinned by endpoints + length:")
    examples = [
        [1, 2, 1, 2],      # len 3, ends 1,2
        [3, 1, 2, 3],      # len 3, ends 3,3
        [2, 3, 1, 3, 2],   # len 4, ends 2,2
    ]
    for colors in examples:
        predicted = b_value_parity(len(colors) - 1, colors[0], colors[-1])
        actual = path_b_value(colors) % 2
        print(f"  {colors}: predicted parity {predicted}, actual "
              f"{actual} (b = {path_b_value(colors)})")
    print()
    print("The adversary uses exactly this parity law to pick the gap "
          "l in {2,3} when concatenating fragments (Lemma 3.6).")


if __name__ == "__main__":
    main()
