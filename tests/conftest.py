"""Shared fixtures for the test suite."""

import pytest

from repro.families.grids import CylindricalGrid, SimpleGrid, ToroidalGrid
from repro.families.triangular import TriangularGrid
from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache


@pytest.fixture(autouse=True)
def _fresh_ball_cache_pool():
    """Isolate tests from the process-wide shared ball pool.

    The pool is keyed by structural fingerprint, so two tests building
    the same small fixture graph would otherwise warm each other's
    caches and perturb hit/miss expectations.
    """
    BallCache.clear_shared_store()
    yield
    BallCache.clear_shared_store()


@pytest.fixture
def path_graph():
    """A 6-node path 0-1-2-3-4-5."""
    return Graph(edges=[(i, i + 1) for i in range(5)])


@pytest.fixture
def cycle_graph():
    """A 6-cycle."""
    return Graph(edges=[(i, (i + 1) % 6) for i in range(6)])


@pytest.fixture
def small_grid():
    """A 5x7 simple grid."""
    return SimpleGrid(5, 7)


@pytest.fixture
def small_torus():
    """A 5x5 toroidal grid (odd columns: not bipartite)."""
    return ToroidalGrid(5, 5)


@pytest.fixture
def small_cylinder():
    """A 4x5 cylindrical grid."""
    return CylindricalGrid(4, 5)


@pytest.fixture
def small_triangular():
    """A side-5 triangular grid (degenerate corners excluded)."""
    return TriangularGrid(5)
