"""Tests for the seeded random generators."""

import pytest

from repro.families.random_graphs import (
    random_connected_bipartite,
    random_reveal_order,
    random_tree,
    scattered_reveal_order,
)
from repro.graphs.traversal import bfs_distances, is_connected
from repro.verify.coloring import is_proper


def test_random_tree_is_a_tree():
    tree = random_tree(50, seed=4)
    assert tree.num_nodes == 50
    assert tree.num_edges == 49
    assert is_connected(tree)


def test_random_tree_reproducible():
    assert random_tree(30, seed=9) == random_tree(30, seed=9)


def test_random_tree_validation():
    with pytest.raises(ValueError):
        random_tree(0)


def test_random_bipartite_is_bipartite_and_connected():
    g = random_connected_bipartite(8, 12, extra_edges=10, seed=2)
    assert is_connected(g)
    parity = {
        node: dist % 2 for node, dist in bfs_distances(g, "L0").items()
    }
    assert is_proper(g, {node: parity[node] + 1 for node in g.nodes()})


def test_random_bipartite_validation():
    with pytest.raises(ValueError):
        random_connected_bipartite(0, 5, 0)


def test_reveal_orders_are_permutations():
    nodes = list(range(40))
    for order in (
        random_reveal_order(nodes, seed=1),
        scattered_reveal_order(nodes, seed=1),
    ):
        assert sorted(order) == nodes


def test_reveal_orders_reproducible():
    nodes = list(range(25))
    assert random_reveal_order(nodes, seed=5) == random_reveal_order(nodes, seed=5)
    assert scattered_reveal_order(nodes, seed=5) == scattered_reveal_order(
        nodes, seed=5
    )
