"""Tests for the exporters: Prometheus text, JSON, and the live
campaign status file."""

import json

from repro.observability.export import (
    live_status_path,
    read_live_status,
    render_live_status,
    to_json,
    to_prometheus,
    write_live_status,
)

SNAPSHOT = {
    "counters": {"campaign_games_played": 16, "reveals_total": 7512},
    "gauges": {"campaign_queue_depth": 4},
    "histograms": {
        "phase_seconds.ack-drain": {
            "count": 40, "sum": 0.5, "min": 0.001, "max": 0.2,
        },
    },
}


def test_prometheus_rendering():
    text = to_prometheus(SNAPSHOT)
    assert "# TYPE repro_campaign_games_played counter" in text
    assert "repro_campaign_games_played 16.0" in text
    assert "# TYPE repro_campaign_queue_depth gauge" in text
    # Dots and dashes in instrument names are sanitized.
    assert "repro_phase_seconds_ack_drain_count 40.0" in text
    assert "repro_phase_seconds_ack_drain_sum 0.5" in text
    assert "repro_phase_seconds_ack_drain_min 0.001" in text
    assert text.endswith("\n")


def test_prometheus_handles_empty_and_none():
    assert to_prometheus({}) == ""
    text = to_prometheus(
        {"histograms": {"h": {"count": 0, "sum": 0.0,
                              "min": None, "max": None}}}
    )
    assert "repro_h_min NaN" in text


def test_json_round_trip():
    assert json.loads(to_json(SNAPSHOT)) == SNAPSHOT


def test_live_status_write_read_round_trip(tmp_path):
    root = str(tmp_path)
    assert read_live_status(root) is None
    path = write_live_status(root, {"done": False, "games_played": 3})
    assert path == live_status_path(root)
    status = read_live_status(root)
    assert status["games_played"] == 3
    assert "written_at" in status
    # No temp files linger after the atomic replace.
    assert [p.name for p in tmp_path.iterdir()] == ["live.json"]


def test_live_status_write_failure_is_swallowed(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("in the way")
    write_live_status(str(blocker), {"done": True})  # must not raise


def test_read_live_status_tolerates_garbage(tmp_path):
    root = str(tmp_path)
    with open(live_status_path(root), "w", encoding="utf-8") as handle:
        handle.write("{torn json")
    assert read_live_status(root) is None
    with open(live_status_path(root), "w", encoding="utf-8") as handle:
        handle.write('["a list, not a status dict"]')
    assert read_live_status(root) is None


def test_render_live_status_sections():
    status = {
        "done": False,
        "written_at": 0.0,
        "monotonic": 100.0,
        "games_played": 5,
        "games_deduped": 2,
        "games_quarantined": 1,
        "queue_depth": 7,
        "in_flight": 2,
        "workers": [
            {"index": 0, "pid": 10, "state": "busy",
             "last_seen": 99.5, "games": 3},
            {"index": 1, "pid": 11, "state": "idle",
             "last_seen": None, "games": 2},
        ],
        "phases": {"ack-drain": 0.6, "worker:compute": 0.9},
    }
    text = render_live_status(status)
    assert "campaign running" in text
    assert "played 5" in text and "deduped 2" in text
    assert "quarantined 1" in text
    assert "queue depth 7" in text and "in-flight 2" in text
    assert "worker 0: pid 10" in text and "0.5s ago" in text
    assert "worker 1" in text and "?" in text
    assert "worker:compute 0.90s (60%)" in text

    assert "campaign finished" in render_live_status({"done": True})
