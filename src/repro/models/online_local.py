"""The Online-LOCAL simulator over a fixed host graph (Section 2.2).

Nodes are processed in an adversarial sequence σ.  When node ``v_i`` is
revealed, the algorithm must color it based on the prefix
``(v_1 .. v_i)`` and the induced subgraph
:math:`G_i = G[\\bigcup_j \\mathcal{B}(v_j, T)]`.

The simulator anonymizes host nodes: the algorithm sees opaque integer
ids assigned in first-seen order (deterministic), never host labels such
as grid coordinates.  This matters — a 3-coloring algorithm that could
read grid coordinates would trivially evade the paper's adversaries (see
the coordinate-cheat ablation in ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache
from repro.models.base import Color, NodeId, OnlineAlgorithm, ViewTracker
from repro.observability.metrics import BoundCounter
from repro.observability.trace import TRACER
from repro.robustness.errors import RevealOrderError, UnknownHostNodeError

HostNode = Hashable

_REVEALS = BoundCounter("reveals_total")


class OnlineLocalSimulator:
    """Run an Online-LOCAL algorithm against a fixed host graph.

    Parameters
    ----------
    host:
        The true input graph ``G``.
    algorithm:
        The algorithm under test.
    locality:
        The locality budget ``T``.
    num_colors:
        Colors available, ``1 .. num_colors``.
    """

    def __init__(
        self,
        host: Graph,
        algorithm: OnlineAlgorithm,
        locality: int,
        num_colors: int,
        leak_labels: bool = False,
    ) -> None:
        self.host = host
        self.locality = locality
        self.leak_labels = leak_labels
        self._balls = BallCache(host)
        self._id_of: Dict[HostNode, NodeId] = {}
        self._node_of: Dict[NodeId, HostNode] = {}
        self._seen: set = set()
        self._revealed: set = set()
        self.tracker = ViewTracker(
            algorithm,
            n=host.num_nodes,
            locality=locality,
            num_colors=num_colors,
        )

    # ------------------------------------------------------------------
    # Id management
    # ------------------------------------------------------------------
    def _intern(self, node: HostNode) -> NodeId:
        """Assign an opaque id to a host node on first sight."""
        existing = self._id_of.get(node)
        if existing is not None:
            return existing
        # leak_labels is an out-of-model ablation: the "id" is the host
        # label itself (e.g. grid coordinates), which real adversaries
        # would never hand an algorithm.
        new_id = node if self.leak_labels else len(self._id_of)
        self._id_of[node] = new_id
        self._node_of[new_id] = node
        return new_id

    def id_of(self, node: HostNode) -> NodeId:
        """The view id of a host node (must already be seen)."""
        return self._id_of[node]

    def host_node(self, node_id: NodeId) -> HostNode:
        """The host node behind a view id."""
        return self._node_of[node_id]

    # ------------------------------------------------------------------
    # The game
    # ------------------------------------------------------------------
    def reveal(self, node: HostNode) -> Color:
        """Reveal a host node; returns the color the algorithm assigns it.

        Revealing extends the seen region by :math:`\\mathcal{B}(v, T)`
        and runs one algorithm step.  Re-revealing an already revealed
        node is an error (σ is a permutation).
        """
        if node not in self.host:
            raise UnknownHostNodeError(
                f"{node!r} is not a node of the host graph"
            )
        # Validate σ *before* any side effects: a double reveal must not
        # leave extended view state behind.
        existing = self._id_of.get(node)
        if existing is not None and existing in self._revealed:
            raise RevealOrderError(f"node {node!r} was already revealed")
        new_ball = self._balls.ball(node, self.locality)
        fresh = new_ball - self._seen
        self._seen |= new_ball
        fresh_ids = [self._intern(u) for u in fresh]
        # Fresh-fresh edges are discovered from both endpoints; dedupe so
        # the tracker receives each new edge exactly once.  Edges into the
        # previously seen region are discovered from the fresh side only,
        # so they skip the dedup set.
        new_edges: List[Tuple[NodeId, NodeId]] = []
        emitted: set = set()
        id_of = self._id_of
        for u in fresh:
            u_id = id_of[u]
            for v in self.host.neighbors(u):
                if v in fresh:
                    edge = frozenset((u_id, id_of[v]))
                    if edge not in emitted:
                        emitted.add(edge)
                        new_edges.append((u_id, id_of[v]))
                elif v in self._seen:
                    new_edges.append((u_id, id_of[v]))
        self.tracker.extend(fresh_ids, new_edges)
        target = self._id_of[node]
        self._revealed.add(target)
        color = self.tracker.reveal(target)
        _REVEALS.inc()
        if TRACER.enabled:
            TRACER.event(
                "reveal",
                model="online-local",
                node=node,
                id=target,
                color=color,
                fresh=len(fresh),
                seen=len(self._seen),
            )
        return color

    def run(self, order: Iterable[HostNode]) -> Dict[HostNode, Color]:
        """Reveal every node in ``order``; returns the full host coloring.

        ``order`` must enumerate every host node exactly once.
        """
        count = 0
        for node in order:
            self.reveal(node)
            count += 1
        if count != self.host.num_nodes:
            raise RevealOrderError(
                f"reveal order covered {count} of {self.host.num_nodes} nodes"
            )
        return self.coloring()

    def coloring(self) -> Dict[HostNode, Color]:
        """The partial coloring translated back to host nodes."""
        return {
            self._node_of[node_id]: color
            for node_id, color in self.tracker.colors.items()
        }

    def color_of(self, node: HostNode) -> Optional[Color]:
        """The committed color of a host node, or None."""
        node_id = self._id_of.get(node)
        if node_id is None:
            return None
        return self.tracker.colors.get(node_id)
