"""The adversary tournament: every lower bound vs every victim, one call.

``run_tournament()`` plays the full cartesian product of

* adversaries — Theorem 1 (grids), Theorem 2 (torus + cylinder),
  Theorem 3 (gadgets, both the 2k−2 and the k+1 color budgets), and
  Theorem 5 (the reduction chain), and
* victims — greedy, the truncated Akbari algorithm, the sandwiched
  LOCAL baseline, and (optionally) the fault-injection family,

returning structured rows for reporting.  Used by
``examples/tournament.py`` and ``benchmarks/bench_tournament.py``; the
paper's prediction is a clean sweep over the honest victims, which
callers assert.

Robustness
----------
Every game runs inside a :class:`~repro.robustness.supervisor.SupervisedGame`
boundary: a victim that raises, loops forever, or breaks the model
contract yields a *forfeit* row (``row.forfeit`` true, reason prefixed
``"forfeit:"``) instead of aborting the sweep.  Long sweeps can journal
completed rows to disk (``journal_path=``) and resume after a kill
(``resume=True``), replaying only the games that never finished.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.adversaries.result import AdversaryResult
from repro.analysis.executor import resolve_workers
from repro.models.base import OnlineAlgorithm
from repro.observability.metrics import get_registry
from repro.observability.trace import (
    JsonlTraceRecorder,
    merge_trace_shards,
    tracing,
)
from repro.registry import (
    DEFAULT_ADVERSARIES,
    DEFAULT_VICTIMS,
    FIXED_VICTIM,
    FixedVictimGame,
    get_adversary,
    get_victim,
)
from repro.robustness.faults import faulty_victims
from repro.robustness.journal import SweepJournal
from repro.robustness.supervisor import GamePolicy, SupervisedGame

#: Journal fields identifying a game for resume purposes.
JOURNAL_KEY_FIELDS = ("adversary", "victim", "locality")


@dataclass
class TournamentRow:
    """One adversary-vs-victim game outcome.

    ``forfeit`` marks wins awarded by the supervisor (victim crash,
    timeout, protocol violation) rather than earned on the board;
    ``detail`` carries the machine-readable failure description for
    forfeit rows, ``error_type`` the triggering exception class, and
    ``failed_at_step`` the reveal index the game had reached when it
    failed (None for non-forfeit rows and fixed-victim games).
    """

    adversary: str
    victim: str
    locality: int
    won: bool
    reason: str
    forfeit: bool = False
    detail: str = ""
    error_type: str = ""
    failed_at_step: Optional[int] = None
    #: Declared instance size, when the adversary reports one (campaign
    #: threshold tables key on it; None for adversaries that don't).
    n: Optional[int] = None


AdversaryEntry = Union[
    Callable[[OnlineAlgorithm], AdversaryResult], FixedVictimGame
]


def default_victims() -> Dict[str, Callable[[], OnlineAlgorithm]]:
    """The standard (honest) victim portfolio, resolved through
    :mod:`repro.registry` (registration replaces the old dict literal)."""
    return {name: get_victim(name) for name in DEFAULT_VICTIMS}


def default_adversaries(locality: int) -> Dict[str, AdversaryEntry]:
    """The standard adversary lineup at the given victim locality,
    resolved through :mod:`repro.registry`."""
    return {
        name: get_adversary(name)(locality) for name in DEFAULT_ADVERSARIES
    }


def _row_from_result(
    adversary: str, victim: str, locality: int, result: AdversaryResult
) -> TournamentRow:
    detail = ""
    error_type = ""
    failed_at_step = None
    if result.forfeit:
        detail = str(
            result.stats.get("error") or result.stats.get("violation") or ""
        )
        error_type = str(result.stats.get("error_type", ""))
        failed_at_step = result.stats.get("failed_at_step")
    return TournamentRow(
        adversary=adversary,
        victim=victim,
        locality=locality,
        won=result.won,
        reason=result.reason,
        forfeit=result.forfeit,
        detail=detail,
        error_type=error_type,
        failed_at_step=failed_at_step,
        n=result.stats.get("declared_n"),
    )


def _row_from_journal(entry: dict) -> TournamentRow:
    return TournamentRow(
        adversary=entry["adversary"],
        victim=entry["victim"],
        locality=int(entry["locality"]),
        won=bool(entry["won"]),
        reason=entry["reason"],
        forfeit=bool(entry.get("forfeit", False)),
        detail=entry.get("detail", ""),
        error_type=entry.get("error_type", ""),
        failed_at_step=entry.get("failed_at_step"),
        n=entry.get("n"),
    )


def run_tournament(
    locality: int = 1,
    victims: Optional[Dict[str, Callable[[], OnlineAlgorithm]]] = None,
    adversaries: Optional[Dict[str, AdversaryEntry]] = None,
    *,
    include_faulty: bool = False,
    policy: Optional[GamePolicy] = None,
    journal_path=None,
    resume: bool = False,
    workers: Optional[int] = None,
    trace_path=None,
) -> List[TournamentRow]:
    """Play every pairing; returns one row per game.

    Parameters
    ----------
    locality:
        The victims' locality budget ``T``.
    victims, adversaries:
        Override the default portfolios.  Adversary entries are either
        victim→result callables or :class:`FixedVictimGame` wrappers
        (played once, under the :data:`FIXED_VICTIM` column).
    include_faulty:
        Append the fault-injection victim family
        (:func:`repro.robustness.faults.faulty_victims`) to the sweep.
    policy:
        Per-game step/time budgets.  Defaults to a 30s wall-clock
        timeout per game; pass an explicit :class:`GamePolicy` to
        tighten or lift it.
    journal_path:
        When given, append each completed row to this JSON-lines journal
        (flushed per game, kill-safe).
    resume:
        With ``journal_path``: skip every game already journaled,
        reusing the recorded rows, so a killed sweep completes only the
        remainder on the next invocation.
    workers:
        Worker process count for the sweep (default 1 = serial; ``None``
        also reads the ``REPRO_WORKERS`` environment variable).  Values
        above 1 fan games out over a multiprocessing pool
        (:class:`repro.analysis.executor.ParallelSweep`), with rows
        returned in the exact serial order.  Only the default portfolios
        can cross a process boundary — custom ``victims``/``adversaries``
        callables always run serially, whatever ``workers`` says.
    trace_path:
        When given, record a structured game trace (JSON-lines, see
        :mod:`repro.observability.trace`) to this file — span records
        per game, reveal/commitment events, and a final metrics
        snapshot.  Parallel sweeps write per-worker shards and merge
        them here when the pool drains.
    """
    custom_portfolio = victims is not None or adversaries is not None
    n_workers = resolve_workers(workers)
    if n_workers > 1 and not custom_portfolio:
        return _run_parallel(
            locality=locality,
            include_faulty=include_faulty,
            policy=policy if policy is not None else GamePolicy(timeout=30.0),
            journal_path=journal_path,
            resume=resume,
            workers=n_workers,
            trace_path=trace_path,
        )

    victims = dict(victims) if victims is not None else default_victims()
    if include_faulty:
        victims.update(faulty_victims())
    adversaries = (
        adversaries if adversaries is not None else default_adversaries(locality)
    )
    policy = policy if policy is not None else GamePolicy(timeout=30.0)
    journal = (
        SweepJournal(journal_path, JOURNAL_KEY_FIELDS)
        if journal_path is not None
        else None
    )
    if journal is not None:
        # A previous parallel run may have died with rows still in worker
        # shards; fold them in so resume sees every finished game.
        journal.merge_shards()
    done = journal.completed() if (journal is not None and resume) else {}

    trace = tracing(trace_path) if trace_path is not None else nullcontext()
    rows: List[TournamentRow] = []
    with trace:
        for adversary_name, entry in adversaries.items():
            if isinstance(entry, FixedVictimGame):
                pairings = [(FIXED_VICTIM, None)]
            else:
                pairings = list(victims.items())
            for victim_name, factory in pairings:
                key = (adversary_name, victim_name, locality)
                if key in done:
                    rows.append(_row_from_journal(done[key]))
                    continue
                labels = {"adversary": adversary_name}
                if isinstance(entry, FixedVictimGame):
                    game = SupervisedGame(
                        lambda _victim, e=entry: e.play(), policy, labels=labels
                    )
                    result = game.run(None)
                else:
                    result = SupervisedGame(entry, policy, labels=labels).run(
                        factory()
                    )
                row = _row_from_result(
                    adversary_name, victim_name, locality, result
                )
                rows.append(row)
                if journal is not None:
                    journal.append(asdict(row))
    return rows


def _run_parallel(
    locality: int,
    include_faulty: bool,
    policy: GamePolicy,
    journal_path,
    resume: bool,
    workers: int,
    trace_path=None,
) -> List[TournamentRow]:
    """The parallel sweep over the default portfolios.

    The game list is the pre-baked tournament campaign's expansion
    (:meth:`repro.analysis.campaign.CampaignSpec.tournament`) — picklable
    :class:`~repro.analysis.executor.GameSpec` entries in the serial
    sweep's exact order, reassembled by index, so the returned rows are
    identical to a serial run.  Worker trace shards are merged into
    ``trace_path`` when the pool drains, followed by a ``metrics``
    record of the parent's registry (which by then holds every worker's
    folded snapshot).
    """
    from dataclasses import replace as _replace

    from repro.analysis.campaign import CampaignSpec
    from repro.analysis.executor import GameSpec, ParallelSweep

    if trace_path is not None and os.path.exists(os.fspath(trace_path)):
        os.remove(os.fspath(trace_path))
    journal = (
        SweepJournal(journal_path, JOURNAL_KEY_FIELDS)
        if journal_path is not None
        else None
    )
    if journal is not None:
        journal.merge_shards()
    done = journal.completed() if (journal is not None and resume) else {}

    campaign = CampaignSpec.tournament(locality, include_faulty=include_faulty)
    specs: List[GameSpec] = [
        _replace(
            spec,
            policy=policy,
            include_faulty=include_faulty,
            journal_path=None if journal is None else journal.path,
            trace_path=None if trace_path is None else os.fspath(trace_path),
        )
        for spec in campaign.expand()
    ]
    precomputed = {}
    for index, spec in enumerate(specs):
        key = (spec.adversary, spec.victim, spec.locality)
        if key in done:
            precomputed[index] = _row_from_journal(done[key])
    sweep = ParallelSweep(workers, journal=journal)
    rows = sweep.run(specs, precomputed=precomputed)
    if trace_path is not None:
        merge_trace_shards(trace_path)
        recorder = JsonlTraceRecorder(trace_path)
        recorder.write(
            {"type": "metrics", "snapshot": get_registry().snapshot()}
        )
        recorder.close()
    return rows


def clean_sweep(rows: List[TournamentRow]) -> bool:
    """Whether the adversaries won every game — the paper's prediction."""
    return all(row.won for row in rows)


def honest_rows(rows: List[TournamentRow]) -> List[TournamentRow]:
    """The rows whose victim is honest (no injected fault)."""
    return [row for row in rows if not row.victim.startswith("faulty-")]


def forfeit_rows(rows: List[TournamentRow]) -> List[TournamentRow]:
    """The rows won by supervisor forfeit rather than on the board."""
    return [row for row in rows if row.forfeit]
