"""Common result record for adversary runs, including forfeit outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

class AdversaryError(Exception):
    """The adversary reached a state the paper proves unreachable —
    indicates a bug in the adversary or a dishonest simulator, never a
    legitimate algorithm win.

    Deliberately *not* a :class:`~repro.robustness.errors.ReproError`:
    the supervisor converts structured failures into forfeits, but an
    adversary bug must propagate loudly rather than fake a win."""


@dataclass
class AdversaryResult:
    """Outcome of one adversary-vs-algorithm game.

    Attributes
    ----------
    won:
        Whether the adversary defeated the algorithm.
    reason:
        ``"monochromatic-edge"`` (an explicit improper edge exists in the
        committed coloring), ``"model-violation"`` (the algorithm colored
        an unseen node, recolored a node, or used an out-of-range color),
        or ``"survived"`` (the algorithm produced a locally consistent
        coloring — expected only when its locality exceeds the theorem's
        threshold or it cheats outside the model).
    improper_edge:
        A host-labeled witness edge when reason is monochromatic-edge.
    certificate:
        The b-value certificate explaining *why* the loss was forced
        (Theorems 1 and 2), if one was assembled before the improper edge
        appeared.
    stats:
        Adversary-specific measurements (region length, reveals used,
        achieved b-value, ...), consumed by the benchmarks.
    forfeit:
        True when the win was awarded by the supervisor because the
        algorithm crashed, timed out, or broke the model contract —
        rather than earned by the adversary's strategy on the board.
        Forfeit reasons are prefixed ``"forfeit:"``.
    """

    won: bool
    reason: str
    improper_edge: Optional[Tuple[Any, Any]] = None
    certificate: Optional[Any] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    forfeit: bool = False


def forfeit_result(
    reason: str,
    error: BaseException,
    failed_at_step: Optional[int] = None,
) -> AdversaryResult:
    """A structured forfeit: the adversary wins because the victim failed.

    ``reason`` is the machine-readable class of failure
    (``"forfeit:victim-crash"``, ``"forfeit:timeout"``, ...); the
    triggering error — its exception type, message, and the reveal index
    the game had reached (``failed_at_step``) — is recorded in ``stats``
    for post-mortems and surfaced in tournament rows.
    """
    stats = {
        "error_type": type(error).__name__,
        "error": str(error),
    }
    if failed_at_step is not None:
        stats["failed_at_step"] = failed_at_step
    return AdversaryResult(
        won=True,
        reason=reason,
        forfeit=True,
        stats=stats,
    )
