"""Tests for the fixed-host Online-LOCAL simulator."""

import pytest

from repro.families.grids import SimpleGrid
from repro.models.base import AlgorithmView, OnlineAlgorithm
from repro.models.online_local import OnlineLocalSimulator


class Recorder(OnlineAlgorithm):
    """Colors everything 1..num_colors greedily and records its views."""

    name = "recorder"

    def reset(self, n, locality, num_colors):
        super().reset(n, locality, num_colors)
        self.view_sizes = []
        self.targets = []

    def step(self, view: AlgorithmView, target):
        self.view_sizes.append(view.graph.num_nodes)
        self.targets.append(target)
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


def test_view_grows_by_balls():
    grid = SimpleGrid(5, 5)
    alg = Recorder()
    sim = OnlineLocalSimulator(grid.graph, alg, locality=1, num_colors=3)
    sim.reveal((2, 2))
    assert alg.view_sizes[-1] == 5  # center + 4 neighbors
    sim.reveal((2, 3))
    assert alg.view_sizes[-1] == 8  # ball overlaps by 2 nodes


def test_ids_are_opaque_and_stable():
    grid = SimpleGrid(4, 4)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=0, num_colors=3)
    sim.reveal((1, 1))
    sim.reveal((1, 2))
    assert sim.id_of((1, 1)) == 0
    assert sim.id_of((1, 2)) == 1
    assert sim.host_node(0) == (1, 1)


def test_leak_labels_mode():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(
        grid.graph, Recorder(), locality=0, num_colors=3, leak_labels=True
    )
    sim.reveal((1, 1))
    assert sim.id_of((1, 1)) == (1, 1)


def test_locality_zero_sees_only_target():
    grid = SimpleGrid(3, 3)
    alg = Recorder()
    sim = OnlineLocalSimulator(grid.graph, alg, locality=0, num_colors=3)
    sim.reveal((0, 0))
    assert alg.view_sizes == [1]


def test_run_covers_all_nodes():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=4)
    coloring = sim.run(sorted(grid.graph.nodes()))
    assert set(coloring) == set(grid.graph.nodes())


def test_run_rejects_partial_order():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=4)
    with pytest.raises(ValueError, match="covered"):
        sim.run([(0, 0), (0, 1)])


def test_double_reveal_rejected():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=3)
    sim.reveal((0, 0))
    with pytest.raises(ValueError, match="already revealed"):
        sim.reveal((0, 0))


def test_unknown_node_rejected():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=3)
    with pytest.raises(KeyError):
        sim.reveal((9, 9))


def test_color_of_partial():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=3)
    assert sim.color_of((0, 0)) is None
    sim.reveal((0, 0))
    assert sim.color_of((0, 0)) == 1
    assert sim.color_of((0, 1)) is None  # seen but uncolored


def test_view_is_induced_subgraph():
    """The view's edge set must match the host's induced subgraph."""
    grid = SimpleGrid(4, 4)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=2, num_colors=4)
    sim.reveal((1, 1))
    sim.reveal((2, 3))
    seen_hosts = [sim.host_node(i) for i in sim.tracker.view_graph.nodes()]
    expected = grid.graph.induced_subgraph(seen_hosts).relabel(
        {node: sim.id_of(node) for node in seen_hosts}
    )
    assert expected == sim.tracker.view_graph


def test_extend_receives_each_edge_exactly_once():
    """Regression: fresh-fresh edges were fed to the tracker twice (once
    from each endpoint's neighbor scan)."""
    grid = SimpleGrid(4, 4)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=2, num_colors=4)
    extended = []
    original = sim.tracker.extend

    def spying_extend(new_nodes, new_edges):
        new_nodes, new_edges = list(new_nodes), list(new_edges)
        extended.append((new_nodes, new_edges))
        return original(new_nodes, new_edges)

    sim.tracker.extend = spying_extend
    sim.reveal((1, 1))
    sim.reveal((2, 2))
    for _nodes, edges in extended:
        undirected = [frozenset(edge) for edge in edges]
        assert len(undirected) == len(set(undirected)), edges
    # Every edge arrived once across the whole run, too (extend batches
    # are disjoint: an edge appears when its second endpoint is seen).
    all_edges = [frozenset(e) for _nodes, edges in extended for e in edges]
    assert len(all_edges) == len(set(all_edges))


def test_tracked_view_is_simple_with_exact_edge_count():
    """The tracked view is a simple graph with exactly the induced edges."""
    grid = SimpleGrid(5, 5)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=2, num_colors=4)
    for node in ((0, 0), (2, 2), (4, 4), (0, 4)):
        sim.reveal(node)
    seen_hosts = [sim.host_node(i) for i in sim.tracker.view_graph.nodes()]
    expected = grid.graph.induced_subgraph(seen_hosts)
    assert sim.tracker.view_graph.num_nodes == expected.num_nodes
    assert sim.tracker.view_graph.num_edges == expected.num_edges
    # Simple graph: no self-loops, symmetric adjacency.
    for u, v in sim.tracker.view_graph.edges():
        assert u != v
        assert sim.tracker.view_graph.has_edge(v, u)


def test_repeated_reveals_hit_the_ball_cache():
    """Reveals on the same host reuse BFS work via the BallCache."""
    grid = SimpleGrid(4, 4)
    sim = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=4)
    order = sorted(grid.graph.nodes())
    sim.run(order)
    assert sim._balls.misses == len(order)
    assert sim._balls.hits == 0  # σ is a permutation: each ball queried once

    # A second simulator on the same host shares the pooled ball table,
    # so even its *first* query hits — this is what lifts tournament
    # audits and repeated games above the one-miss-per-ball floor.
    sim2 = OnlineLocalSimulator(grid.graph, Recorder(), locality=1, num_colors=4)
    assert sim2._balls.ball((0, 0), 1) == sim2._balls.ball((0, 0), 1)
    assert sim2._balls.hits == 2
    assert sim2._balls.misses == 0

    # And so does a simulator on a *structurally identical* but
    # independently built host (same fingerprint, different object).
    twin = SimpleGrid(4, 4)
    sim3 = OnlineLocalSimulator(twin.graph, Recorder(), locality=1, num_colors=4)
    sim3._balls.ball((0, 0), 1)
    assert sim3._balls.hits == 1
    assert sim3._balls.misses == 0
