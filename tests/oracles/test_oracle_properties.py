"""Property-based oracle tests: on random fragments of the right family,
the fast oracles agree with the brute-force Definition 1.4 enumeration
and with the family's canonical coloring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.families.ktree import random_ktree
from repro.families.triangular import TriangularGrid
from repro.graphs.traversal import ball
from repro.oracles import BruteForceOracle, KTreeOracle, TriangularOracle
from repro.verify.liuc import sample_connected_subsets

TRI = TriangularGrid(7)
KTREE = random_ktree(2, 25, seed=9)


def same_partition(parts_a, parts_b, nodes):
    mapping = {}
    for node in nodes:
        pa, pb = parts_a[node], parts_b[node]
        if mapping.setdefault(pa, pb) != pb:
            return False
    return len(set(mapping.values())) == len(mapping)


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_triangular_oracle_matches_canonical_on_random_fragments(seed):
    fragment = sample_connected_subsets(TRI.graph, count=1, max_size=8, seed=seed)[0]
    parts = TriangularOracle().infer(TRI.graph, fragment)
    canonical = {v: TRI.canonical_color(v) for v in fragment}
    assert same_partition(parts, canonical, fragment)


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=10, deadline=None)
def test_triangular_oracle_matches_brute_force(seed):
    fragment = sample_connected_subsets(TRI.graph, count=1, max_size=5, seed=seed)[0]
    fast = TriangularOracle().infer(TRI.graph, fragment)
    brute = BruteForceOracle(num_parts=3, radius=1).infer(TRI.graph, fragment)
    assert same_partition(fast, brute, fragment)


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_ktree_oracle_matches_canonical_on_random_fragments(seed):
    fragment = sample_connected_subsets(KTREE.graph, count=1, max_size=6, seed=seed)[0]
    parts = KTreeOracle(2).infer(KTREE.graph, fragment)
    canonical = {v: KTREE.canonical_color(v) for v in fragment}
    assert same_partition(parts, canonical, fragment)


@given(st.integers(min_value=0, max_value=10 ** 6), st.integers(0, 2))
@settings(max_examples=25, deadline=None)
def test_oracles_are_stable_under_component_growth(seed, radius):
    """Growing a fragment never changes the inferred partition of the
    original nodes (up to permutation) — the coherence the rebasing
    logic of UnifyColoring depends on."""
    fragment = sample_connected_subsets(TRI.graph, count=1, max_size=6, seed=seed)[0]
    grown = ball(TRI.graph, fragment, radius)
    oracle = TriangularOracle()
    small = oracle.infer(TRI.graph, fragment)
    large = oracle.infer(TRI.graph, grown)
    assert same_partition(small, large, fragment)
