"""Tests for the incremental Dynamic-LOCAL model."""

import pytest

from repro.families.grids import SimpleGrid
from repro.models.dynamic_local import (
    DynamicBipartiteRecolor,
    DynamicGreedy,
    DynamicLocalSimulator,
    DynamicViolation,
    DynamicAlgorithm,
)
from repro.verify.coloring import is_proper


def grow_grid(sim, rows, cols, order=None):
    """Insert a rows x cols grid node by node (row-major by default),
    wiring each node to its already-present grid neighbors."""
    grid = SimpleGrid(rows, cols)
    nodes = order or sorted(grid.graph.nodes())
    present = set()
    for node in nodes:
        neighbors = [v for v in grid.graph.neighbors(node) if v in present]
        sim.insert(node, neighbors)
        present.add(node)
    return grid


class TestSimulatorContract:
    def test_duplicate_insert_rejected(self):
        sim = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        sim.insert("a")
        with pytest.raises(ValueError, match="already inserted"):
            sim.insert("a")

    def test_unknown_neighbor_rejected(self):
        sim = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        with pytest.raises(ValueError, match="not in the graph"):
            sim.insert("a", ["ghost"])

    def test_out_of_ball_recoloring_rejected(self):
        class Cheater(DynamicAlgorithm):
            name = "cheater"
            plan = {"far": 1, "mid": 2, "near": 1}

            def update(self, view):
                assignment = {view.new_node: self.plan[view.new_node]}
                if view.new_node == "near":
                    assignment["far"] = 2  # two hops away, ball radius 1
                return assignment

        sim = DynamicLocalSimulator(Cheater(), locality=1, num_colors=3)
        sim.insert("far")
        sim.insert("mid", ["far"])
        with pytest.raises(DynamicViolation, match="outside"):
            sim.insert("near", ["mid"])

    def test_improper_intermediate_detected(self):
        class Constant(DynamicAlgorithm):
            name = "constant"

            def update(self, view):
                return {view.new_node: 1}

        sim = DynamicLocalSimulator(Constant(), locality=1, num_colors=3)
        sim.insert(0)
        with pytest.raises(DynamicViolation, match="improper"):
            sim.insert(1, [0])

    def test_color_budget_enforced(self):
        class Loud(DynamicAlgorithm):
            name = "loud"

            def update(self, view):
                return {view.new_node: 99}

        sim = DynamicLocalSimulator(Loud(), locality=1, num_colors=3)
        with pytest.raises(DynamicViolation, match="outside 1..3"):
            sim.insert(0)


class TestDynamicGreedy:
    def test_grid_growth_stays_proper(self):
        """The paper's Section 1 example transplanted: greedy solves
        (Δ+1)-coloring with locality 1."""
        sim = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        grid = grow_grid(sim, 6, 6)
        assert is_proper(grid.graph, sim.colors)
        assert sim.total_recolorings() == 0

    def test_needs_degree_plus_one(self):
        sim = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=2)
        sim.insert(0)       # color 1
        sim.insert(1, [0])  # color 2
        with pytest.raises(DynamicViolation):
            sim.insert(2, [0, 1])  # adjacent to both colors


class TestDynamicBipartiteRecolor:
    def test_row_major_grid_growth(self):
        sim = DynamicLocalSimulator(
            DynamicBipartiteRecolor(), locality=3, num_colors=3
        )
        grid = grow_grid(sim, 6, 6)
        assert is_proper(grid.graph, sim.colors)
        assert set(sim.colors.values()) <= {1, 2}

    def test_parity_clash_triggers_recoloring(self):
        """Grow two paths with clashing parities, then join them: the
        algorithm must flip one side (within the ball) to stay proper."""
        sim = DynamicLocalSimulator(
            DynamicBipartiteRecolor(), locality=4, num_colors=3
        )
        # Path A: a0-a1; Path B: b0-b1; both endpoints get color 1.
        sim.insert("a0")
        sim.insert("a1", ["a0"])
        sim.insert("b0")
        sim.insert("b1", ["b0"])
        assert sim.colors["a1"] == sim.colors["b1"] == 2
        # Join the two color-1 ends through a fresh middle node: its
        # neighbors a0 and b0 are both 1 after this insert sequence...
        # connect to a0 (1) and b1 (2): blocked on both 1 and 2.
        sim.insert("m", ["a0", "b1"])
        assert is_proper(sim.graph, sim.colors)

    def test_distant_clash_forces_color_3(self):
        """When the clashing side extends beyond the ball the algorithm
        must burn color 3 instead of flipping."""
        sim = DynamicLocalSimulator(
            DynamicBipartiteRecolor(), locality=2, num_colors=3
        )
        # A long path whose far end is outside any radius-2 ball.
        sim.insert("p0")
        for i in range(1, 6):
            sim.insert(f"p{i}", [f"p{i - 1}"])
        # A second long path.
        sim.insert("q0")
        for i in range(1, 6):
            sim.insert(f"q{i}", [f"q{i - 1}"])
        # p5 and q5: p5 has color 2 (odd index), q5 color 2. Join via a
        # node adjacent to p4 (1) and q5 (2): blocked both ways, and the
        # 1-colored p-side stretches past the ball boundary.
        sim.insert("join", ["p4", "q5"])
        assert is_proper(sim.graph, sim.colors)
        assert sim.colors["join"] == 3

    def test_lower_bound_transfers(self):
        """An adversarial insertion sequence eventually defeats the
        best-effort recolorer at small locality — as it must, since
        Theorem 1's bound transfers down the model sandwich."""
        sim = DynamicLocalSimulator(
            DynamicBipartiteRecolor(), locality=1, num_colors=3
        )
        defeated = False
        try:
            # Many parity-clashing junctions in a row exhaust {1,2,3}.
            sim.insert("x0")
            sim.insert("x1", ["x0"])
            sim.insert("y0")
            sim.insert("y1", ["y0"])
            sim.insert("z0")
            sim.insert("z1", ["z0"])
            sim.insert("j1", ["x0", "y1"])   # forced onto 3
            sim.insert("j2", ["y0", "z1"])   # forced onto 3 again
            # A node adjacent to colors 1, 2, and 3 has nowhere to go.
            sim.insert("k", ["x1", "j1"])
            sim.insert("dead", ["x0", "x1", "j1"])
        except DynamicViolation:
            defeated = True
        if not defeated:
            assert is_proper(sim.graph, sim.colors)


def test_recolor_counter():
    sim = DynamicLocalSimulator(
        DynamicBipartiteRecolor(), locality=4, num_colors=3
    )
    sim.insert("a0")
    sim.insert("a1", ["a0"])
    sim.insert("b0")
    sim.insert("b1", ["b0"])
    before = sim.total_recolorings()
    sim.insert("m", ["a0", "b1"])
    assert sim.total_recolorings() >= before


class TestFullyDynamic:
    """Dynamic-LOCAL±: deletions never break a proper coloring, and the
    repair hook is radius-enforced."""

    def test_insert_delete_roundtrip(self):
        from repro.models.dynamic_local import FullyDynamicLocalSimulator

        sim = FullyDynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        grid = grow_grid(sim, 4, 4)
        sim.delete((1, 1))
        sim.delete((2, 2))
        assert (1, 1) not in sim.graph
        assert is_proper(sim.graph, sim.colors)
        # Re-insert one of them.
        sim.insert((1, 1), [(0, 1), (1, 0), (1, 2)])
        assert is_proper(sim.graph, sim.colors)

    def test_delete_unknown_rejected(self):
        from repro.models.dynamic_local import FullyDynamicLocalSimulator

        sim = FullyDynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        with pytest.raises(ValueError):
            sim.delete("ghost")

    def test_repair_hook_radius_enforced(self):
        from repro.models.dynamic_local import FullyDynamicLocalSimulator

        class OverreachingRepair(DynamicGreedy):
            name = "overreaching"

            def repair_after_deletion(self, view, former_neighbors):
                return {"z": 1}  # far from the deletion point

        sim = FullyDynamicLocalSimulator(
            OverreachingRepair(), locality=1, num_colors=5
        )
        # Path a-b-c-z; delete a: ball around {b} at radius 1 is {b,c}.
        sim.insert("a")
        sim.insert("b", ["a"])
        sim.insert("c", ["b"])
        sim.insert("z", ["c"])
        with pytest.raises(DynamicViolation, match="outside"):
            sim.delete("a")

    def test_isolated_node_deletion(self):
        from repro.models.dynamic_local import FullyDynamicLocalSimulator

        sim = FullyDynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=3)
        sim.insert("solo")
        sim.delete("solo")
        assert sim.graph.num_nodes == 0
