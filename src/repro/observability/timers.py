"""Phase-attribution timers: where does campaign wall-clock actually go?

``BENCH_tournament.json`` records multi-core campaigns at ~1× speedup,
and the ROADMAP blames per-game IPC — but until now nothing in the repo
could attribute a campaign's wall-clock to dispatch vs. pipe IPC vs.
worker compute vs. store fsync.  This module is that attribution layer:
named *phases* are timed with monotonic clocks and fed into registry
:class:`~repro.observability.metrics.Histogram` instruments, so the
per-worker snapshots merge associatively in the parent exactly like
every other metric and a finished campaign can print a phase table.

Design constraints (mirroring the tracer):

* **Off by default, ~free when off.**  A disabled :class:`PhaseTimer`
  pays one module-global check per ``with`` entry and never touches a
  clock; ``benchmarks/bench_observability.py`` holds the off-path
  overhead under 3% and the timers-on overhead under 5%.
* **BoundCounter-style handles.**  Call sites cache a module-level
  :func:`phase_timer` handle; on observation it re-binds to the active
  registry (:class:`~repro.observability.metrics.BoundHistogram`), so
  scoped workers and benchmarks see exactly their own deltas.
* **Scoped names across processes.**  Pool workers call
  :func:`set_phase_scope` (``"worker:"``) so their phases merge into the
  parent under distinct names — ``worker:compute`` is worker-side CPU,
  ``ack-drain`` is the parent waiting on pipes — which is precisely the
  IPC-vs-compute split the ROADMAP's scheduler rework needs.

Phases instrumented across the harness (see ``docs/observability.md``):

==================  ====================================================
``spec-expand``     campaign spec → GameSpec list expansion
``store-index``     ResultStore shard loads for dedupe/result lookups
``pipe-send``       parent dispatch (chunk pickling + pipe write); under
                    ``worker:`` the result-ack send
``ack-wait``        parent blocked waiting for any worker message — the
                    phase that *should* dominate a healthy parallel
                    campaign (workers computing while the parent idles)
``ack-drain``       parent reading + folding worker acks (recv, row and
                    metrics bookkeeping) — actual IPC cost, so the bench
                    gates it below 25% of parent wall-clock
``lease-sweep``     lease bookkeeping: health sweep, expiry, respawn
``pool-spawn``      forking worker processes
``compute``         playing the game (supervisor + simulators); recorded
                    as ``worker:compute`` in pool workers, bare in
                    serial runs
``store-fsync``     ResultStore row append + fsync
``csr-compile``     CSR kernel full recompiles
``csr-patch``       CSR incremental row patches
``ball-extract``    miss-path neighborhood-ball extraction (BFS/CSR sweep)
``cache-sync``      BallCache catching up with graph generation changes
``worker:pipe-recv``  worker idle, waiting for the next leased game
==================  ====================================================

The sum of the *top-level* parent phases (:data:`TOP_LEVEL_PHASES`) must
account for ≥90% of a campaign's measured wall-clock —
:func:`attribution_coverage` computes that share, the campaign run
ledger records it, and ``benchmarks/bench_tournament.py`` gates on it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.observability.metrics import BoundHistogram

#: Registry-name prefix shared by every phase histogram.
PHASE_METRIC_PREFIX = "phase_seconds."

#: Scope prefix pool workers apply so their phases merge under distinct
#: names in the parent registry.
WORKER_SCOPE = "worker:"

#: Parent-side phases that partition a campaign run's wall-clock; their
#: sum over the run is the numerator of :func:`attribution_coverage`.
#: Worker-scoped phases are deliberately absent — worker processes run
#: concurrently with the parent, so adding their time would double count
#: (they overlap the parent's ``ack-drain`` wait).
TOP_LEVEL_PHASES = (
    "spec-expand",
    "store-index",
    "pool-spawn",
    "pipe-send",
    "ack-wait",
    "ack-drain",
    "lease-sweep",
    "compute",
    "store-fsync",
)

#: Environment knob enabling the timers at import time (campaign CLI
#: runs enable them explicitly; see ``repro.cli campaign run --timers``).
TIMERS_ENV_VAR = "REPRO_PHASE_TIMERS"

_enabled = os.environ.get(TIMERS_ENV_VAR, "") in ("1", "true", "on")
_scope = ""
#: Bumped whenever the scope changes so cached handles re-derive their
#: metric names (scope changes are once-per-process events).
_scope_epoch = 0


def phase_timers_enabled() -> bool:
    """Whether phase timers are currently recording in this process."""
    return _enabled


def set_phase_timers(enabled: bool) -> bool:
    """Enable/disable the timers process-wide; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def set_phase_scope(scope: str) -> str:
    """Prefix every subsequently recorded phase name (``"worker:"``).

    Returns the previous scope.  Called once at pool-worker start so
    worker-side phases never collide with the parent's when their
    snapshots merge.
    """
    global _scope, _scope_epoch
    previous = _scope
    _scope = scope
    _scope_epoch += 1
    return previous


def get_phase_scope() -> str:
    """The scope prefix active in this process."""
    return _scope


@contextmanager
def timed_phases(enabled: bool = True) -> Iterator[None]:
    """Enable (or disable) the timers for a dynamic extent, restoring
    the previous state afterwards — the benchmark/test discipline."""
    previous = set_phase_timers(enabled)
    try:
        yield
    finally:
        set_phase_timers(previous)


class PhaseTimer:
    """A reusable timing handle for one named phase.

    Use as a context manager around the phase's code::

        _T_COMPUTE = phase_timer("worker-compute")
        with _T_COMPUTE:
            play(...)

    Entry checks one module global; when the timers are disabled no
    clock is read and exit is a single ``None`` test.  When enabled, the
    elapsed ``time.perf_counter`` interval is observed into the registry
    histogram ``phase_seconds.<scope><name>`` through a cached
    :class:`~repro.observability.metrics.BoundHistogram` (re-bound when
    the active registry or the scope changes).  Handles are not
    reentrant — nest *different* phases, never the same one.
    """

    __slots__ = ("name", "_epoch", "_bound", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._epoch = -1
        self._bound: Optional[BoundHistogram] = None
        self._t0: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Record one measured interval (ignores the enabled flag —
        callers timing manually already paid the clock reads)."""
        if self._epoch != _scope_epoch:
            self._bound = BoundHistogram(
                PHASE_METRIC_PREFIX + _scope + self.name
            )
            self._epoch = _scope_epoch
        self._bound.observe(seconds)

    def __enter__(self) -> "PhaseTimer":
        self._t0 = time.perf_counter() if _enabled else None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t0 = self._t0
        if t0 is not None:
            self._t0 = None
            self.observe(time.perf_counter() - t0)
        return False


class NullTimer:
    """The structural no-op timer: same interface, never records.

    Served where timing is configured away entirely (as opposed to a
    :class:`PhaseTimer` that is merely disabled right now).
    """

    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared sink instance.
NULL_TIMER = NullTimer()

_timers: Dict[str, PhaseTimer] = {}


def phase_timer(name: str) -> PhaseTimer:
    """The process-wide :class:`PhaseTimer` for ``name`` (created once;
    hot call sites should still cache the returned handle)."""
    timer = _timers.get(name)
    if timer is None:
        timer = _timers[name] = PhaseTimer(name)
    return timer


# ----------------------------------------------------------------------
# Attribution over snapshots
# ----------------------------------------------------------------------
def phase_attribution(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """Total seconds per phase from a registry snapshot.

    Keys keep their scope prefix (``worker:compute``); values are the
    histogram sums.  Input is the plain dict produced by
    :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`.
    """
    out: Dict[str, float] = {}
    for name, summary in snapshot.get("histograms", {}).items():
        if not name.startswith(PHASE_METRIC_PREFIX):
            continue
        out[name[len(PHASE_METRIC_PREFIX):]] = float(summary.get("sum", 0.0))
    return out


def phase_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """Per-phase seconds accumulated between two attribution snapshots
    (how one campaign run isolates itself inside a shared registry)."""
    out: Dict[str, float] = {}
    for name, total in after.items():
        gained = total - before.get(name, 0.0)
        if gained > 0.0:
            out[name] = gained
    return out


def attribution_coverage(
    phases: Mapping[str, float], wall_seconds: float
) -> Optional[float]:
    """The share of ``wall_seconds`` the top-level parent phases account
    for (None when the wall-clock is degenerate).

    This is the honesty metric the bench gates on: attribution that
    explains only half the run is worse than none, because it invites
    optimizing the measured half while the real cost hides in the gap.
    """
    if wall_seconds <= 0.0:
        return None
    covered = sum(
        seconds
        for name, seconds in phases.items()
        if name in TOP_LEVEL_PHASES
    )
    return covered / wall_seconds
