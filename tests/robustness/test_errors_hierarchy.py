"""The structured exception hierarchy and its compatibility contracts."""

import pytest

from repro.models.base import AlgorithmError, ViewTracker
from repro.models.online_local import OnlineLocalSimulator
from repro.families.grids import SimpleGrid
from repro.oracles.base import OracleError
from repro.robustness.errors import (
    GameTimeout,
    InvalidColorError,
    LocalityViolation,
    ProtocolViolation,
    RecoloringError,
    ReproError,
    RevealOrderError,
    StepBudgetExceeded,
    UnknownHostNodeError,
    VictimCrash,
)
from repro.models.base import OnlineAlgorithm


class Scripted(OnlineAlgorithm):
    """Returns pre-programmed step results, one per reveal."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)

    def step(self, view, target):
        return self.script.pop(0)


def test_hierarchy_roots():
    for cls in (
        ProtocolViolation,
        InvalidColorError,
        LocalityViolation,
        RecoloringError,
        RevealOrderError,
        UnknownHostNodeError,
        GameTimeout,
        StepBudgetExceeded,
        VictimCrash,
        OracleError,
    ):
        assert issubclass(cls, ReproError)


def test_algorithm_error_is_protocol_violation_alias():
    assert AlgorithmError is ProtocolViolation
    # Adversaries catching AlgorithmError must catch every violation kind.
    for cls in (InvalidColorError, LocalityViolation, RecoloringError):
        assert issubclass(cls, AlgorithmError)


def test_backward_compatible_builtin_bases():
    assert issubclass(RevealOrderError, ValueError)
    assert issubclass(UnknownHostNodeError, KeyError)
    # The KeyError repr-quoting is suppressed for readable messages.
    assert str(UnknownHostNodeError("plain message")) == "plain message"


def test_tracker_raises_specific_violations():
    def fresh(script):
        tracker = ViewTracker(Scripted(script), n=10, locality=1, num_colors=3)
        tracker.extend([0, 1], [(0, 1)])
        return tracker

    with pytest.raises(InvalidColorError):
        fresh([{0: 99}]).reveal(0)
    with pytest.raises(LocalityViolation):
        fresh([{0: 1, 42: 2}]).reveal(0)
    tracker = fresh([{0: 1}, {1: 2, 0: 3}])
    tracker.reveal(0)
    with pytest.raises(RecoloringError):
        tracker.reveal(1)
    with pytest.raises(ProtocolViolation, match="expected a node->color"):
        fresh([None]).reveal(0)


def test_simulator_raises_structured_errors():
    class TargetOne(OnlineAlgorithm):
        name = "target-one"

        def step(self, view, target):
            return {target: 1}

    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(
        grid.graph, TargetOne(), locality=1, num_colors=3
    )
    with pytest.raises(UnknownHostNodeError):
        sim.reveal((9, 9))
    sim.reveal((0, 0))
    with pytest.raises(RevealOrderError):
        sim.reveal((0, 0))
