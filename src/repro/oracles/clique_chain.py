"""Clique-chain partition inference (the engine behind two oracles).

Whenever a family guarantees that every node of a connected fragment
``C`` lies in an s-clique within :math:`\\mathcal{B}(C, r)` and that any
two such cliques are linked by a chain of s-cliques consecutively sharing
``s - 1`` nodes, fixing the parts of one clique forces the part of every
node: two cliques sharing ``s - 1`` nodes force their two non-shared
nodes into the same part.

The paper uses this argument twice:

* k-trees — (k+1)-cliques, radius 1 (Section 1); and
* the hierarchy :math:`G_k` — k-cliques, radius k-1 ≤ k (Claims 5.3-5.5),
  which is how :math:`G_k \\in \\mathcal{L}_{k,\\ell}` with ℓ ∈ O(1) is
  established (Lemma 5.6).

:class:`CliqueChainOracle` implements it generically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.oracles.base import OracleError, PartitionOracle

Node = Hashable


class CliqueChainOracle(PartitionOracle):
    """Infer the unique ``num_parts``-partition via clique chains.

    Parameters
    ----------
    num_parts:
        Number of parts k; cliques of exactly this size carry one node of
        each part.
    radius:
        The inference radius ℓ of Definition 1.4 for the family.
    """

    def __init__(self, num_parts: int, radius: int) -> None:
        if num_parts < 2:
            raise ValueError(f"need at least 2 parts, got {num_parts}")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.num_parts = num_parts
        self.radius = radius

    def infer(self, graph: Graph, component: Set[Node]) -> Dict[Node, int]:
        if not component:
            raise OracleError("cannot partition an empty component")
        allowed = ball(graph, component, self.radius)
        cliques = self._cliques(graph, allowed)
        if not cliques:
            raise OracleError(
                f"no {self.num_parts}-clique in the neighborhood; wrong family?"
            )
        by_face: Dict[FrozenSet[Node], List[FrozenSet[Node]]] = {}
        for clique in cliques:
            for dropped in clique:
                by_face.setdefault(clique - {dropped}, []).append(clique)

        seed = min(cliques, key=lambda c: sorted(map(repr, c)))
        parts: Dict[Node, int] = {}
        for index, node in enumerate(sorted(seed, key=repr)):
            parts[node] = index
        assigned = {seed}
        queue = deque([seed])
        while queue:
            clique = queue.popleft()
            for dropped in clique:
                face = clique - {dropped}
                for other in by_face.get(face, ()):
                    if other in assigned:
                        continue
                    (newcomer,) = other - face
                    if newcomer in parts:
                        if parts[newcomer] != parts[dropped]:
                            raise OracleError(
                                f"clique chain forces two parts on "
                                f"{newcomer!r}; fragment outside the family"
                            )
                    else:
                        parts[newcomer] = parts[dropped]
                    assigned.add(other)
                    queue.append(other)
        missing = component - set(parts)
        if missing:
            raise OracleError(
                f"{len(missing)} component node(s) not reachable by clique "
                f"chains (e.g. {next(iter(missing))!r})"
            )
        return self._normalize(parts)

    def _cliques(self, graph: Graph, allowed: Set[Node]) -> List[FrozenSet[Node]]:
        """All ``num_parts``-cliques inside ``allowed``."""
        size = self.num_parts
        ordered = sorted(allowed, key=repr)
        rank = {node: index for index, node in enumerate(ordered)}
        result: List[FrozenSet[Node]] = []

        def extend(members: List[Node], candidates: List[Node]) -> None:
            if len(members) == size:
                result.append(frozenset(members))
                return
            # Prune: not enough candidates left to finish the clique.
            if len(members) + len(candidates) < size:
                return
            for index, node in enumerate(candidates):
                members.append(node)
                deeper = [
                    other
                    for other in candidates[index + 1:]
                    if graph.has_edge(node, other)
                ]
                extend(members, deeper)
                members.pop()

        for node in ordered:
            higher = sorted(
                (
                    other
                    for other in graph.neighbors(node)
                    if other in allowed and rank.get(other, -1) > rank[node]
                ),
                key=repr,
            )
            extend([node], higher)
        return result
