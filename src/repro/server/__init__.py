"""Coloring-as-a-service: the asyncio HTTP tier over the campaign
engine.

Stdlib-only by construction — ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 layer (:mod:`repro.server.routes`) — so serving
adds no dependencies to the reproduction.  The wire bodies are the
typed request/response dataclasses from :mod:`repro.api`; the engine
underneath is the same content-addressed store + scheduler the CLI
drives, which is what makes the server's dedupe guarantees inherit
the store's zero-replay resume story.

Start one with ``repro serve --store DIR`` or programmatically::

    import asyncio
    from repro.server import ColoringServer

    async def main():
        server = ColoringServer("/tmp/store", port=8423)
        await server.run()

    asyncio.run(main())

See ``docs/serving.md`` for the endpoint reference.
"""

from repro.server.app import CampaignJob, ColoringServer, serve
from repro.server.ratelimit import RateLimiter, TokenBucket
from repro.server.routes import (
    HttpError,
    Request,
    Response,
    Router,
    json_response,
    read_request,
)

__all__ = [
    "CampaignJob",
    "ColoringServer",
    "serve",
    "RateLimiter",
    "TokenBucket",
    "HttpError",
    "Request",
    "Response",
    "Router",
    "json_response",
    "read_request",
]
