"""Tests for the Akbari et al. bipartite 3-coloring algorithm."""

import math

import pytest

from repro.core.akbari import AkbariBipartiteColoring
from repro.families.grids import CylindricalGrid, SimpleGrid
from repro.families.random_graphs import (
    random_connected_bipartite,
    random_reveal_order,
    random_tree,
    scattered_reveal_order,
)
from repro.models.online_local import OnlineLocalSimulator
from repro.verify.coloring import assert_proper


def budget(n: int) -> int:
    """The paper's locality budget 3·log2(n), with a small safety pad."""
    return 3 * math.ceil(math.log2(max(2, n))) + 2


def run_on(graph, order, locality=None):
    locality = locality if locality is not None else budget(graph.num_nodes)
    algorithm = AkbariBipartiteColoring()
    sim = OnlineLocalSimulator(graph, algorithm, locality=locality, num_colors=3)
    coloring = sim.run(order)
    return coloring, algorithm


class TestProperOnBipartiteFamilies:
    def test_grid_row_major(self):
        grid = SimpleGrid(10, 10)
        coloring, __ = run_on(grid.graph, sorted(grid.graph.nodes()))
        assert_proper(grid.graph, coloring, max_colors=3)

    @pytest.mark.parametrize("seed", range(4))
    def test_grid_random_orders(self, seed):
        grid = SimpleGrid(9, 11)
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
        coloring, __ = run_on(grid.graph, order)
        assert_proper(grid.graph, coloring, max_colors=3)

    @pytest.mark.parametrize("seed", range(3))
    def test_grid_scattered_orders(self, seed):
        grid = SimpleGrid(12, 12)
        order = scattered_reveal_order(sorted(grid.graph.nodes()), seed=seed)
        coloring, __ = run_on(grid.graph, order)
        assert_proper(grid.graph, coloring, max_colors=3)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_trees(self, seed):
        tree = random_tree(80, seed=seed)
        order = random_reveal_order(sorted(tree.nodes()), seed=seed + 10)
        coloring, __ = run_on(tree, order)
        assert_proper(tree, coloring, max_colors=3)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_bipartite(self, seed):
        g = random_connected_bipartite(15, 20, extra_edges=25, seed=seed)
        order = random_reveal_order(sorted(g.nodes()), seed=seed)
        coloring, __ = run_on(g, order)
        assert_proper(g, coloring, max_colors=3)


class TestFlipMechanics:
    def test_flips_occur_and_stay_proper(self):
        """Two anchors with clashing parities force exactly one flip.

        The anchors are 21 apart (odd), so both start their groups with
        color 1 on opposite bipartition classes — incompatible types.
        Revealing the rest in BFS order from the first anchor grows one
        front, so the single merge flips the smaller group with plenty of
        locality to spare (3 layers ≤ T = 5).
        """
        from repro.graphs.traversal import bfs_distances

        grid = SimpleGrid(30, 31)
        anchors = [(15, 5), (15, 26)]
        distances = bfs_distances(grid.graph, anchors[0])
        rest = sorted(
            (v for v in grid.graph.nodes() if v not in set(anchors)),
            key=lambda v: (distances[v], v),
        )
        algorithm = AkbariBipartiteColoring()
        sim = OnlineLocalSimulator(grid.graph, algorithm, locality=5, num_colors=3)
        for v in anchors + rest:
            sim.reveal(v)
        coloring = sim.coloring()
        assert_proper(grid.graph, coloring, max_colors=3)
        assert algorithm.flip_count == 1
        assert 3 in set(coloring.values())

    def test_two_groups_same_parity_no_flip(self):
        grid = SimpleGrid(30, 30)
        algorithm = AkbariBipartiteColoring()
        sim = OnlineLocalSimulator(grid.graph, algorithm, locality=3, num_colors=3)
        # Anchors on the same bipartition class, far apart.
        sim.reveal((5, 5))
        sim.reveal((5, 15))
        for v in sorted(grid.graph.nodes()):
            if v not in {(5, 5), (5, 15)}:
                sim.reveal(v)
        assert_proper(grid.graph, sim.coloring(), max_colors=3)
        assert algorithm.flip_count == 0

    def test_first_node_colored_one(self):
        grid = SimpleGrid(6, 6)
        algorithm = AkbariBipartiteColoring()
        sim = OnlineLocalSimulator(grid.graph, algorithm, locality=3, num_colors=3)
        assert sim.reveal((3, 3)) == 1


class TestNonBipartiteFallback:
    def test_survives_odd_cylinder_without_crashing(self):
        """On an odd cylinder the parity machinery detects odd components
        and falls back to greedy; the run completes (properness is not
        guaranteed and Theorem 2 says it cannot be)."""
        cyl = CylindricalGrid(4, 5)
        algorithm = AkbariBipartiteColoring()
        sim = OnlineLocalSimulator(cyl.graph, algorithm, locality=6, num_colors=3)
        coloring = sim.run(sorted(cyl.graph.nodes()))
        assert set(coloring) == set(cyl.graph.nodes())


class TestValidation:
    def test_needs_three_colors(self):
        algorithm = AkbariBipartiteColoring()
        with pytest.raises(ValueError):
            algorithm.reset(n=10, locality=3, num_colors=2)
