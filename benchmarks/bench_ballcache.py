"""Experiment BALLCACHE: wholesale vs scoped ball-cache invalidation.

Measures what the incremental-invalidation rework of
:class:`~repro.graphs.traversal.BallCache` buys on three workloads
(see ``docs/performance.md`` for the methodology):

1. **Tournament portfolio** — the default adversary x victim sweep at
   the requested localities, run twice per policy in one process (a cold
   pass plus a warm pass, which is how the benchmark harness and CI
   smoke actually execute sweeps).  A single cold pass is bounded by the
   distinct-ball ceiling (every first computation of a ball is a miss by
   definition); the pooled store turns every repeated pass into ~100%
   hits, which the per-instance wholesale cache structurally cannot do.
2. **Per-family breakdown** — cold hit rates for the grid, torus, and
   gadget adversaries separately.
3. **Dynamic microbenchmark** — a genuinely mutating graph (the
   Dynamic-LOCAL workload shape): probe balls are re-queried between
   far-away edge insertions.  Scoped invalidation keeps the probes warm;
   wholesale recomputes everything after every mutation.
4. **Extraction kernels** — uncached (miss-path) ball extraction timed
   under both traversal backends (``dict`` vs ``csr``, see
   ``docs/performance.md`` "The CSR kernel") per family, with a
   cross-check that the kernels answer identically.

Run as a script to emit machine-readable results::

    PYTHONPATH=src python benchmarks/bench_ballcache.py \
        --localities 1 2 3 --out BENCH_ballcache.json

``--check`` exits non-zero unless scoped beats wholesale, parallel rows
stay byte-identical to serial, and CSR grid extraction clears its
speedup floor — the CI benchmark smoke gate.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_tournament import sweep_specs  # noqa: E402

from repro.analysis.executor import ParallelSweep  # noqa: E402
from repro.analysis.tables import render_table  # noqa: E402
from repro.families.grids import SimpleGrid, ToroidalGrid  # noqa: E402
from repro.families.ktree import deterministic_ktree  # noqa: E402
from repro.graphs.csr import (  # noqa: E402
    HAVE_NUMPY,
    csr_view,
    get_graph_backend,
    set_graph_backend,
)
from repro.graphs.graph import Graph  # noqa: E402
from repro.graphs.traversal import (  # noqa: E402
    BallCache,
    ball,
    set_invalidation_policy,
)

#: The acceptance bar for the scoped policy on the tournament portfolio.
TARGET_HIT_RATE = 0.75

#: The acceptance bar for CSR miss-path extraction on the grid family
#: (dict_seconds / csr_seconds).  The 2x bar is what the tuple-row
#: frontier sweep delivers on grid balls at reveal-loop scale; without
#: numpy the large-frontier vectorized levels are unavailable, so the
#: gate relaxes (the interpreter sweep still clears 2x at this workload
#: on CPython 3.9+, but slower floors keep exotic hosts from flaking).
MIN_CSR_SPEEDUP = 2.0
MIN_CSR_SPEEDUP_NO_NUMPY = 1.5

#: Miss-path extraction workloads: one per family, sized so the grid —
#: the family the acceptance gate reads — runs at reveal-loop scale
#: (hundreds of radius-T balls on a six-figure-edge graph).
EXTRACTION_WORKLOADS = {
    "grid": {"build": lambda: SimpleGrid(160, 160).graph,
             "radius": 30, "stride": 307},
    "torus": {"build": lambda: ToroidalGrid(64, 64).graph,
              "radius": 16, "stride": 53},
    "ktree": {"build": lambda: deterministic_ktree(2, 3000).graph,
              "radius": 40, "stride": 29},
}

FAMILY_OF = {
    "theorem1-grid": "grid",
    "theorem2-torus": "torus",
    "theorem2-cylinder": "torus",
    "theorem3-gadget(2k-2)": "gadget",
    "corollary13-gadget(k+1)": "gadget",
    "theorem5-reduction": "reduction",
}


def _delta(after, before):
    """Counter-wise difference of two global_stats() dicts."""
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
        "evictions": after["evictions"] - before["evictions"],
        "scoped_flushes": after["scoped_flushes"] - before["scoped_flushes"],
        "full_flushes": after["full_flushes"] - before["full_flushes"],
    }


def run_portfolio(policy, localities, passes=2):
    """Run the full portfolio ``passes`` times under ``policy``.

    Returns per-pass cache profiles, the aggregate, and whether every
    pass (and a 2-worker parallel run) produced rows identical to the
    first serial pass.
    """
    previous = set_invalidation_policy(policy)
    try:
        specs = sweep_specs(localities)
        BallCache.reset()
        baseline_rows = None
        identical = True
        pass_profiles = []
        before = BallCache.global_stats()
        for _ in range(passes):
            rows = ParallelSweep(1).run(specs)
            after = BallCache.global_stats()
            pass_profiles.append(_delta(after, before))
            before = after
            if baseline_rows is None:
                baseline_rows = rows
            else:
                identical = identical and rows == baseline_rows
        parallel_rows = ParallelSweep(2).run(specs)
        identical = identical and parallel_rows == baseline_rows
        aggregate = _delta(before, {k: 0 for k in before})
        return {
            "passes": pass_profiles,
            "aggregate": aggregate,
            "hit_rate": aggregate["hit_rate"],
            "cold_hit_rate": pass_profiles[0]["hit_rate"],
            "warm_hit_rate": pass_profiles[-1]["hit_rate"] if passes > 1 else None,
            "rows_identical_to_serial": identical,
            "games_per_pass": len(baseline_rows),
        }
    finally:
        set_invalidation_policy(previous)


def run_families(policy, localities):
    """Cold hit rate per adversary family under ``policy``."""
    previous = set_invalidation_policy(policy)
    try:
        by_family = {}
        for spec in sweep_specs(localities):
            family = FAMILY_OF.get(spec.adversary, spec.adversary)
            by_family.setdefault(family, []).append(spec)
        profiles = {}
        for family, specs in sorted(by_family.items()):
            BallCache.reset()
            before = BallCache.global_stats()
            ParallelSweep(1).run(specs)
            profiles[family] = _delta(BallCache.global_stats(), before)
        return profiles
    finally:
        set_invalidation_policy(previous)


def run_dynamic_microbench(policy, nodes=400, rounds=60, probes=12):
    """A mutating-graph workload: repeated probe queries between edge
    insertions at the far end of a long path.

    Under scoped invalidation the probes (near node 0) are disjoint from
    every mutation (near node ``nodes``), so they stay cached; wholesale
    flushes the table on every insertion.
    """
    previous = set_invalidation_policy(policy)
    try:
        BallCache.reset()
        graph = Graph(edges=[(i, i + 1) for i in range(nodes - 1)])
        cache = BallCache(graph)
        probe_nodes = list(range(0, 3 * probes, 3))
        for round_index in range(rounds):
            for probe in probe_nodes:
                cache.ball(probe, 2)
            graph.add_edge(nodes - 1, ("extra", round_index))
        for probe in probe_nodes:
            cache.ball(probe, 2)
        return dict(cache.stats(), rounds=rounds, probes=len(probe_nodes))
    finally:
        set_invalidation_policy(previous)


def _time_extraction(graph, sources, radius, backend, repeats):
    """Best-of-``repeats`` wall-clock for uncached balls under ``backend``."""
    previous = set_graph_backend(backend)
    try:
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for source in sources:
                ball(graph, source, radius)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        set_graph_backend(previous)


def run_extraction(repeats=5):
    """Miss-path ball extraction: dict kernel vs CSR kernel, per family.

    Times the uncached :func:`~repro.graphs.traversal.ball` entry point
    (exactly what a :class:`BallCache` miss pays) over a spread of
    sources on each family, under both backends.  The one-off CSR
    compile is timed separately — callers amortize it across every miss
    on the structure — and the two kernels' answers are cross-checked on
    a sample so a speedup can never come from a wrong ball.
    """
    profiles = {}
    for family, spec in sorted(EXTRACTION_WORKLOADS.items()):
        graph = spec["build"]()
        radius = spec["radius"]
        sources = list(graph.nodes())[:: spec["stride"]]
        start = time.perf_counter()
        view = csr_view(graph)
        compile_seconds = time.perf_counter() - start
        dict_seconds = _time_extraction(graph, sources, radius, "dict", repeats)
        csr_seconds = _time_extraction(graph, sources, radius, "csr", repeats)
        previous = set_graph_backend("dict")
        try:
            agree = all(
                view.ball_labels([source], radius) == ball(graph, source, radius)
                for source in sources[:5]
            )
        finally:
            set_graph_backend(previous)
        profiles[family] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "radius": radius,
            "sources": len(sources),
            "dict_seconds": dict_seconds,
            "csr_seconds": csr_seconds,
            "speedup": dict_seconds / csr_seconds if csr_seconds else None,
            "csr_compile_seconds": compile_seconds,
            "kernel": view.kernel,
            "backends_agree": agree,
        }
    return {
        "numpy": HAVE_NUMPY,
        "repeats": repeats,
        "families": profiles,
    }


def run_bench(localities=(1, 2, 3), passes=2):
    portfolio = {
        policy: run_portfolio(policy, localities, passes=passes)
        for policy in ("wholesale", "scoped")
    }
    families = {
        policy: run_families(policy, localities)
        for policy in ("wholesale", "scoped")
    }
    dynamic = {
        policy: run_dynamic_microbench(policy)
        for policy in ("wholesale", "scoped")
    }
    extraction = run_extraction()
    scoped = portfolio["scoped"]
    return {
        "experiment": "ballcache-invalidation",
        "localities": list(localities),
        "passes_per_policy": passes,
        "graph_backend": get_graph_backend(),
        "portfolio": portfolio,
        "families": families,
        "dynamic_microbench": dynamic,
        "extraction": extraction,
        "hit_rate": scoped["hit_rate"],
        "target_hit_rate": TARGET_HIT_RATE,
        "meets_target": scoped["hit_rate"] >= TARGET_HIT_RATE,
        "min_csr_speedup": (
            MIN_CSR_SPEEDUP if extraction["numpy"] else MIN_CSR_SPEEDUP_NO_NUMPY
        ),
        "rows_identical_to_serial": scoped["rows_identical_to_serial"]
        and portfolio["wholesale"]["rows_identical_to_serial"],
    }


def check(report, min_csr_speedup=None):
    """The CI gate; returns a list of failure messages (empty = pass)."""
    failures = []
    scoped = report["portfolio"]["scoped"]
    wholesale = report["portfolio"]["wholesale"]
    if scoped["hit_rate"] <= wholesale["hit_rate"]:
        failures.append(
            f"scoped hit rate {scoped['hit_rate']:.1%} does not beat "
            f"wholesale {wholesale['hit_rate']:.1%}"
        )
    if not report["rows_identical_to_serial"]:
        failures.append("rows diverged between passes or from parallel run")
    dyn_scoped = report["dynamic_microbench"]["scoped"]
    dyn_wholesale = report["dynamic_microbench"]["wholesale"]
    if dyn_scoped["hit_rate"] <= dyn_wholesale["hit_rate"]:
        failures.append("scoped does not beat wholesale on the dynamic bench")
    floor = min_csr_speedup if min_csr_speedup is not None else report["min_csr_speedup"]
    extraction = report["extraction"]["families"]
    grid = extraction["grid"]
    if grid["speedup"] < floor:
        failures.append(
            f"CSR grid extraction speedup {grid['speedup']:.2f}x is below "
            f"the {floor:.2f}x floor ({grid['kernel']} kernel)"
        )
    disagreeing = sorted(
        family for family, entry in extraction.items()
        if not entry["backends_agree"]
    )
    if disagreeing:
        failures.append(
            f"dict and CSR kernels disagree on: {', '.join(disagreeing)}"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--localities", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument(
        "--passes", type=int, default=2,
        help="portfolio passes per policy (cold + warm)",
    )
    parser.add_argument("--out", default="BENCH_ballcache.json")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless scoped beats wholesale with identical "
             "rows and CSR extraction clears its speedup floor",
    )
    parser.add_argument(
        "--min-csr-speedup", type=float, default=None,
        help="override the CSR-vs-dict grid extraction floor "
             f"(default {MIN_CSR_SPEEDUP} with numpy, "
             f"{MIN_CSR_SPEEDUP_NO_NUMPY} without)",
    )
    args = parser.parse_args(argv)

    report = run_bench(localities=tuple(args.localities), passes=args.passes)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rows = []
    for policy in ("wholesale", "scoped"):
        entry = report["portfolio"][policy]
        rows.append([
            policy,
            f"{entry['cold_hit_rate']:.1%}",
            f"{entry['warm_hit_rate']:.1%}" if entry["warm_hit_rate"] is not None else "-",
            f"{entry['hit_rate']:.1%}",
            f"{report['dynamic_microbench'][policy]['hit_rate']:.1%}",
        ])
    print(render_table(
        ["policy", "portfolio cold", "portfolio warm", "portfolio aggregate",
         "dynamic bench"],
        rows,
    ))
    print(f"scoped aggregate hit rate: {report['hit_rate']:.1%} "
          f"(target {report['target_hit_rate']:.0%}: "
          f"{'met' if report['meets_target'] else 'MISSED'})")
    print(f"rows identical to serial: {report['rows_identical_to_serial']}")

    extraction = report["extraction"]
    print()
    print(render_table(
        ["family", "nodes", "radius", "dict (s)", "csr (s)", "speedup",
         "kernel", "agree"],
        [[family,
          entry["nodes"],
          entry["radius"],
          f"{entry['dict_seconds']:.3f}",
          f"{entry['csr_seconds']:.3f}",
          f"{entry['speedup']:.2f}x",
          entry["kernel"],
          "yes" if entry["backends_agree"] else "NO"]
         for family, entry in sorted(extraction["families"].items())],
    ))
    floor = (args.min_csr_speedup if args.min_csr_speedup is not None
             else report["min_csr_speedup"])
    grid_speedup = extraction["families"]["grid"]["speedup"]
    print(f"CSR grid extraction speedup: {grid_speedup:.2f}x "
          f"(floor {floor:.2f}x: "
          f"{'met' if grid_speedup >= floor else 'MISSED'}; "
          f"numpy={'yes' if extraction['numpy'] else 'no'}, "
          f"active backend={report['graph_backend']})")
    print(f"wrote {args.out}")

    if args.check:
        failures = check(report, min_csr_speedup=args.min_csr_speedup)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
