"""Tests for the duplicate-node hierarchy G_k (Section 5.2)."""

import pytest

from repro.families.hierarchy import Hierarchy
from repro.graphs.traversal import is_connected
from repro.verify.coloring import is_proper


def test_g2_is_the_grid():
    h = Hierarchy(2, 3, 4)
    assert h.num_nodes == 12
    assert h.graph.has_edge((2, (0, 0)), (2, (0, 1)))


def test_node_count_doubles_per_layer():
    """Observation 5.1: |G_k| = 2^(k-2) n."""
    for k in (2, 3, 4):
        h = Hierarchy(k, 3, 3)
        assert h.num_nodes == 2 ** (k - 2) * 9


def test_duplicate_adjacency():
    h = Hierarchy(3, 3, 3)
    base = (2, (1, 1))
    dup = (3, base)
    assert h.graph.has_edge(dup, base)
    for nbr_inner in h.base.graph.neighbors((1, 1)):
        assert h.graph.has_edge(dup, (2, nbr_inner))
    # Duplicates are pairwise non-adjacent (H_3 is independent).
    other_dup = (3, (2, (0, 0)))
    assert not h.graph.has_edge(dup, other_dup)


def test_layers_partition_nodes():
    h = Hierarchy(4, 3, 3)
    total = sum(len(h.layer_nodes(layer)) for layer in range(2, 5))
    assert total == h.num_nodes
    assert len(h.layer_nodes(2)) == 9
    assert len(h.layer_nodes(3)) == 9
    assert len(h.layer_nodes(4)) == 18


def test_higher_layers_are_independent_sets():
    h = Hierarchy(4, 3, 3)
    for layer in (3, 4):
        nodes = h.layer_nodes(layer)
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert not h.graph.has_edge(a, b)


def test_parent_and_base_ancestor():
    h = Hierarchy(4, 3, 3)
    base = (2, (0, 1))
    dup3 = (3, base)
    dup4 = (4, dup3)
    assert h.parent(dup4) == dup3
    assert h.parent(dup3) == base
    assert h.base_ancestor(dup4) == base
    assert h.base_ancestor(base) == base
    with pytest.raises(ValueError):
        h.parent(base)


def test_canonical_coloring_is_proper():
    """Observation 5.2: G_k is k-partite."""
    for k in (2, 3, 4):
        h = Hierarchy(k, 4, 4)
        coloring = {u: h.canonical_color(u) + 1 for u in h.graph.nodes()}
        assert is_proper(h.graph, coloring)
        assert len(set(coloring.values())) == k


def test_witness_clique_claim_5_3():
    """Every node shares a k-clique with its base ancestor."""
    for k in (2, 3, 4):
        h = Hierarchy(k, 3, 3)
        for node in h.graph.nodes():
            clique = h.witness_clique(node)
            assert len(clique) == k
            assert node in clique
            assert h.base_ancestor(node) in clique
            members = sorted(clique, key=repr)
            for a in members:
                for b in members:
                    if a != b:
                        assert h.graph.has_edge(a, b), (node, a, b)


def test_clique_layer_structure():
    """Every k-clique has exactly two layer-2 nodes and one per higher
    layer (observation inside the proof of Claim 5.5)."""
    h = Hierarchy(3, 3, 3)
    for node in h.graph.nodes():
        clique = h.witness_clique(node)
        layers = sorted(h.layer(u) for u in clique)
        assert layers == [2, 2, 3]


def test_edge_maps_to_base_edge_claim_5_4():
    """pi_diamond maps edges of G_k to edges (or equal nodes) of the grid."""
    h = Hierarchy(4, 3, 3)
    for u, v in h.graph.edges():
        bu, bv = h.base_ancestor(u), h.base_ancestor(v)
        assert bu == bv or h.graph.has_edge(bu, bv), (u, v, bu, bv)


def test_duplicate_accessor_validation():
    h = Hierarchy(3, 3, 3)
    base = (2, (0, 0))
    assert h.duplicate(base, 3) == (3, base)
    with pytest.raises(ValueError):
        h.duplicate((3, base), 3)


def test_connected():
    assert is_connected(Hierarchy(4, 3, 3).graph)


def test_validation():
    with pytest.raises(ValueError):
        Hierarchy(1, 3, 3)


def test_lemma_5_6_g3_has_locally_inferable_unique_coloring():
    """Lemma 5.6 by brute force on a small G_3: every sampled connected
    fragment's 3-partition is forced by its k-radius neighborhood."""
    from repro.verify.liuc import (
        has_locally_inferable_unique_coloring,
        sample_connected_subsets,
    )

    h = Hierarchy(3, 3, 3)
    fragments = sample_connected_subsets(h.graph, count=8, max_size=4, seed=1)
    ok, counterexample = has_locally_inferable_unique_coloring(
        h.graph, k=3, ell=3, fragments=fragments
    )
    assert ok, counterexample


def test_g3_radius_zero_is_not_enough():
    """Contrast: without the neighborhood, a bare layer-2 path fragment
    of G_3 is not uniquely 3-partitioned."""
    from repro.verify.liuc import partition_of_fragment

    h = Hierarchy(3, 3, 3)
    fragment = {(2, (0, 0)), (2, (0, 1)), (2, (0, 2))}
    assert partition_of_fragment(h.graph, fragment, k=3, ell=0) is None
    assert partition_of_fragment(h.graph, fragment, k=3, ell=3) is not None
