"""Grid topologies from Section 2.1 of the paper.

All three families use 0-based ``(row, col)`` node labels (the paper is
1-based; 0-based is the Python convention and makes the modular wraparound
of cylinders and tori natural).

* :class:`SimpleGrid` — rows and columns induce paths.
* :class:`CylindricalGrid` — left/right borders joined; rows induce
  cycles, columns induce paths.
* :class:`ToroidalGrid` — both border pairs joined; rows and columns both
  induce cycles.

Each class exposes the generated :class:`~repro.graphs.graph.Graph`, the
row/column node sequences (as *directed* traversal orders, which is what
the b-value machinery of Section 3 consumes), and the automorphisms the
adversaries exploit (horizontal reflection, translations).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph

GridNode = Tuple[int, int]


class _GridBase:
    """Shared helpers for the three grid families."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.graph = Graph()
        # One batch: the finished grid sits at generation 1, not O(n).
        with self.graph.batch():
            for i in range(rows):
                for j in range(cols):
                    self.graph.add_node((i, j))
            self._add_edges()

    # Subclasses override to define wraparound behavior.
    def _wrap_row(self) -> bool:
        raise NotImplementedError

    def _wrap_col(self) -> bool:
        raise NotImplementedError

    def _add_edges(self) -> None:
        for i in range(self.rows):
            for j in range(self.cols):
                if j + 1 < self.cols:
                    self.graph.add_edge((i, j), (i, j + 1))
                elif self._wrap_row() and self.cols > 2:
                    self.graph.add_edge((i, j), (i, 0))
                if i + 1 < self.rows:
                    self.graph.add_edge((i, j), (i + 1, j))
                elif self._wrap_col() and self.rows > 2:
                    self.graph.add_edge((i, j), (0, j))

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes, the paper's ``n``."""
        return self.rows * self.cols

    def node(self, i: int, j: int) -> GridNode:
        """The node at row ``i``, column ``j`` (bounds-checked)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i}, {j}) outside {self.rows}x{self.cols} grid")
        return (i, j)

    def row(self, i: int) -> List[GridNode]:
        """The nodes of row ``i`` in increasing column order."""
        if not 0 <= i < self.rows:
            raise IndexError(f"row {i} outside grid with {self.rows} rows")
        return [(i, j) for j in range(self.cols)]

    def column(self, j: int) -> List[GridNode]:
        """The nodes of column ``j`` in increasing row order."""
        if not 0 <= j < self.cols:
            raise IndexError(f"column {j} outside grid with {self.cols} columns")
        return [(i, j) for i in range(self.rows)]

    def row_path(self, i: int, j_start: int, j_end: int) -> List[GridNode]:
        """The directed path along row ``i`` from ``j_start`` to ``j_end``.

        ``j_start`` may exceed ``j_end``, in which case the path runs
        leftward.  Endpoints are inclusive.
        """
        step = 1 if j_end >= j_start else -1
        return [(i, j) for j in range(j_start, j_end + step, step)]

    def column_path(self, j: int, i_start: int, i_end: int) -> List[GridNode]:
        """The directed path along column ``j`` between the given rows."""
        step = 1 if i_end >= i_start else -1
        return [(i, j) for i in range(i_start, i_end + step, step)]

    def reflect_horizontal(self) -> Dict[GridNode, GridNode]:
        """The automorphism mirroring columns: ``(i, j) -> (i, cols-1-j)``.

        This is the "reverse the direction of a fragment" move the
        adversary uses in the proofs of Theorems 1 and 2.
        """
        return {
            (i, j): (i, self.cols - 1 - j)
            for i in range(self.rows)
            for j in range(self.cols)
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rows}x{self.cols})"


class SimpleGrid(_GridBase):
    """The :math:`(a \\times b)` simple grid; bipartite, rows/columns are paths."""

    def _wrap_row(self) -> bool:
        return False

    def _wrap_col(self) -> bool:
        return False

    def bipartition_color(self, node: GridNode) -> int:
        """The canonical 2-coloring: ``(i + j) mod 2`` (colors 0 and 1)."""
        i, j = node
        return (i + j) % 2


class CylindricalGrid(_GridBase):
    """A grid whose left and right borders are joined; rows induce cycles.

    With an odd number of columns the row cycles are odd, so the graph is
    not bipartite — the regime where Theorem 2 applies.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if cols < 3:
            raise ValueError("cylindrical grids need at least 3 columns")
        super().__init__(rows, cols)

    def _wrap_row(self) -> bool:
        return True

    def _wrap_col(self) -> bool:
        return False

    def row_cycle(self, i: int) -> List[GridNode]:
        """Row ``i`` as a directed cycle traversal (first node not repeated)."""
        return self.row(i)


class ToroidalGrid(_GridBase):
    """A grid with both border pairs joined; rows and columns induce cycles."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 3 or cols < 3:
            raise ValueError("toroidal grids need at least 3 rows and 3 columns")
        super().__init__(rows, cols)

    def _wrap_row(self) -> bool:
        return True

    def _wrap_col(self) -> bool:
        return True

    def row_cycle(self, i: int) -> List[GridNode]:
        """Row ``i`` as a directed cycle traversal (first node not repeated)."""
        return self.row(i)

    def column_cycle(self, j: int) -> List[GridNode]:
        """Column ``j`` as a directed cycle traversal."""
        return self.column(j)
