"""The adversaries are adaptive, so randomization does not save victims.

The paper's model is deterministic, but the follow-up [ACd+24] extends
the Ω(log n) bound to randomized algorithms; our adversaries branch only
on committed colors, so they win against seeded-random victims on every
run — verified here across a battery of seeds.
"""

import pytest

from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.grid import GridAdversary
from repro.adversaries.torus import TorusAdversary
from repro.core.baselines import RandomizedGreedyColorer


@pytest.mark.parametrize("seed", range(5))
def test_grid_adversary_beats_randomized(seed):
    result = GridAdversary(locality=1).run(RandomizedGreedyColorer(seed))
    assert result.won


@pytest.mark.parametrize("seed", range(5))
def test_torus_adversary_beats_randomized(seed):
    result = TorusAdversary(locality=1).run(RandomizedGreedyColorer(seed))
    assert result.won


@pytest.mark.parametrize("seed", range(5))
def test_gadget_adversary_beats_randomized(seed):
    result = GadgetAdversary(k=3, locality=1).run(RandomizedGreedyColorer(seed))
    assert result.won


def test_randomized_victim_is_reproducible():
    results = [
        GridAdversary(locality=1).run(RandomizedGreedyColorer(7)).stats
        for __ in range(2)
    ]
    assert results[0] == results[1]
