"""The paper's primary contribution: b-value theory, the upper-bound
coloring algorithms, and baseline algorithms.

* :mod:`repro.core.bvalue` — a-values and b-values (Definitions 3.1–3.2)
  with the cancellation and parity lemmas (Lemmas 3.3–3.5).
* :mod:`repro.core.akbari` — the Akbari et al. O(log n) Online-LOCAL
  3-coloring of bipartite graphs (Section 5.1.1).
* :mod:`repro.core.unify` — this paper's generalization: (k+1)-coloring
  graphs with locally inferable unique colorings, including Algorithm 1
  (Section 5.1.2).
* :mod:`repro.core.baselines` — greedy and canonical colorers used as the
  algorithm portfolio in benchmarks.
"""

from repro.core.bvalue import a_value, b_value, b_value_parity, path_b_value
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.unify import UnifyColoring
from repro.core.baselines import (
    CanonicalLocalColorer,
    CheatingCoordinateColorer,
    GreedyOnlineColorer,
    GreedySLocalColorer,
)

__all__ = [
    "a_value",
    "b_value",
    "b_value_parity",
    "path_b_value",
    "AkbariBipartiteColoring",
    "UnifyColoring",
    "CanonicalLocalColorer",
    "CheatingCoordinateColorer",
    "GreedyOnlineColorer",
    "GreedySLocalColorer",
]
