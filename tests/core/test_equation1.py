"""Tests for Equation (1) of Theorem 2's proof: for any proper 3-coloring
of a toroidal/cylindrical grid, two oppositely oriented row cycles have
b-values summing to zero — and with an odd number of columns both values
are odd.
"""

import itertools


from repro.core.bvalue import b_value
from repro.families.grids import CylindricalGrid, ToroidalGrid
from repro.oracles.brute import proper_colorings
from repro.verify.coloring import is_proper


def opposite_row_cycles(host, i1, i2, cols):
    forward = [(i1, j) for j in range(cols)]
    backward = [(i2, (-j) % cols) for j in range(cols)]
    return forward, backward


def shifted(coloring):
    return {node: color + 1 for node, color in coloring.items()}


class TestOddTorus:
    def test_diagonal_coloring_exists(self):
        """Odd tori ARE 3-colorable — the diagonal coloring works."""
        torus = ToroidalGrid(5, 5)
        coloring = {(i, j): (i + j) % 3 + 1 for i, j in torus.graph.nodes()}
        assert is_proper(torus.graph, coloring)

    def test_equation_1_and_oddness_exhaustive_3x3(self):
        torus = ToroidalGrid(3, 3)
        count = 0
        for raw in proper_colorings(torus.graph, 3):
            coloring = shifted(raw)
            for i1, i2 in itertools.combinations(range(3), 2):
                forward, backward = opposite_row_cycles(torus, i1, i2, 3)
                b1 = b_value(forward, coloring, cycle=True)
                b2 = b_value(backward, coloring, cycle=True)
                assert b1 + b2 == 0, (coloring, i1, i2)
                assert b1 % 2 == 1  # odd columns -> odd b-values
            count += 1
        assert count > 0

    def test_equation_1_on_diagonal_colorings_5x5(self):
        torus = ToroidalGrid(5, 5)
        for phase in range(3):
            coloring = {
                (i, j): (i + j + phase) % 3 + 1 for i, j in torus.graph.nodes()
            }
            forward, backward = opposite_row_cycles(torus, 0, 3, 5)
            b1 = b_value(forward, coloring, cycle=True)
            b2 = b_value(backward, coloring, cycle=True)
            assert b1 + b2 == 0
            assert b1 % 2 == 1


class TestCylinder:
    def test_equation_1_sampled_colorings(self):
        cyl = CylindricalGrid(3, 5)
        checked = 0
        for raw in proper_colorings(cyl.graph, 3, limit=50):
            coloring = shifted(raw)
            forward, backward = opposite_row_cycles(cyl, 0, 2, 5)
            b1 = b_value(forward, coloring, cycle=True)
            b2 = b_value(backward, coloring, cycle=True)
            assert b1 + b2 == 0
            assert b1 % 2 == 1
            checked += 1
        assert checked == 50


class TestEvenColumnsContrast:
    def test_even_columns_give_even_b_values(self):
        """With even columns the parity obstruction evaporates — the
        ablation behind Theorem 2's odd-column requirement."""
        torus = ToroidalGrid(4, 4)
        for raw in proper_colorings(torus.graph, 3, limit=40):
            coloring = shifted(raw)
            forward, backward = opposite_row_cycles(torus, 0, 2, 4)
            b1 = b_value(forward, coloring, cycle=True)
            b2 = b_value(backward, coloring, cycle=True)
            assert b1 + b2 == 0
            assert b1 % 2 == 0
