"""k-trees and their clique trees (paper Section 1).

A k-tree starts from a (k+1)-clique; each subsequent node attaches to an
existing k-clique.  k-trees are (k+1)-partite... more precisely they are
(k+1)-chromatic with a *unique* (k+1)-coloring up to permutation, and the
coloring is locally inferable with radius 1, so k-trees belong to
:math:`\\mathcal{L}_{k+1,1}` in the paper's notation (the paper colors
k-trees with k+2 colors via Theorem 4).

The :class:`KTree` object records the construction sequence, the canonical
coloring (each new node takes the one color absent from its attachment
clique), and the clique tree ``H`` whose nodes are the (k+1)-cliques.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Hashable, List, Sequence

from repro.graphs.graph import Graph

Node = Hashable


class KTree:
    """A k-tree built incrementally from attachment choices.

    Parameters
    ----------
    k:
        The clique parameter; the initial clique has ``k + 1`` nodes
        labeled ``0 .. k``.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = k
        self.graph = Graph()
        initial = list(range(k + 1))
        with self.graph.batch():
            for u in initial:
                for v in initial:
                    if u < v:
                        self.graph.add_edge(u, v)
        self._canonical: Dict[Node, int] = {u: u for u in initial}
        # All (k+1)-cliques, in creation order; clique 0 is the root.
        self.cliques: List[FrozenSet[Node]] = [frozenset(initial)]
        self._next_label = k + 1

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def canonical_color(self, node: Node) -> int:
        """The canonical (k+1)-coloring (colors ``0 .. k``).

        The coloring is unique up to permutation because each node's color
        is forced by the k-clique it attached to.
        """
        return self._canonical[node]

    def attach(self, clique: Sequence[Node]) -> Node:
        """Add a new node adjacent to the given k-clique; returns its label.

        Raises
        ------
        ValueError
            If ``clique`` is not a k-clique of the current graph.
        """
        members = list(clique)
        if len(set(members)) != self.k:
            raise ValueError(f"attachment set must have exactly k={self.k} nodes")
        for u in members:
            for v in members:
                if u != v and not self.graph.has_edge(u, v):
                    raise ValueError(f"attachment set is not a clique: {u!r} !~ {v!r}")
        new = self._next_label
        self._next_label += 1
        with self.graph.batch():
            for u in members:
                self.graph.add_edge(new, u)
        used = {self._canonical[u] for u in members}
        free = [color for color in range(self.k + 1) if color not in used]
        self._canonical[new] = free[0]
        self.cliques.append(frozenset(members) | {new})
        return new

    def clique_tree(self) -> Graph:
        """The tree ``H`` on the (k+1)-cliques (adjacent iff sharing k nodes).

        Returned as a graph over clique indices (positions in
        ``self.cliques``).  For a k-tree built by :meth:`attach` this graph
        is connected; it is a tree whenever each attachment clique is a
        sub-clique of exactly one earlier (k+1)-clique, which holds for the
        generators in this module.
        """
        h = Graph(nodes=range(len(self.cliques)))
        for a in range(len(self.cliques)):
            for b in range(a + 1, len(self.cliques)):
                if len(self.cliques[a] & self.cliques[b]) == self.k:
                    h.add_edge(a, b)
        return h


def deterministic_ktree(k: int, num_nodes: int) -> KTree:
    """A path-like k-tree with ``num_nodes`` nodes (a "k-path").

    Each new node attaches to the k most recently added nodes, producing a
    long, thin k-tree — the worst case for locality experiments because
    its diameter is Θ(n/k).
    """
    tree = KTree(k)
    if num_nodes < k + 1:
        raise ValueError(f"a k-tree needs at least k+1={k + 1} nodes")
    while tree.num_nodes < num_nodes:
        newest = tree.num_nodes - 1
        tree.attach(list(range(newest, newest - k, -1)))
    return tree


def random_ktree(k: int, num_nodes: int, seed: int = 0) -> KTree:
    """A random k-tree: each node attaches to a k-sub-clique of a random
    existing (k+1)-clique."""
    tree = KTree(k)
    if num_nodes < k + 1:
        raise ValueError(f"a k-tree needs at least k+1={k + 1} nodes")
    rng = random.Random(seed)
    while tree.num_nodes < num_nodes:
        host = rng.choice(tree.cliques)
        members = sorted(host, key=repr)
        drop = rng.randrange(len(members))
        tree.attach([u for idx, u in enumerate(members) if idx != drop])
    return tree
