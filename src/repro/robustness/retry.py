"""Retry-with-reseed for randomized harness paths.

Randomized reveal orders and oracle-backed colorers can fail for
seed-specific reasons (an order that strands an oracle inference, a
pathological scatter).  :func:`retry_with_reseed` re-runs the attempt
with successive seeds, retrying only on *structured* failures
(:class:`~repro.robustness.errors.ReproError`, which includes
``OracleError``) — genuine bugs still propagate on the first attempt.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.robustness.errors import ReproError

T = TypeVar("T")


class RetriesExhausted(ReproError):
    """Every reseeded attempt failed; the last failure is ``__cause__``."""


def retry_with_reseed(
    attempt: Callable[[int], T],
    *,
    seed: int = 0,
    attempts: int = 3,
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    backoff: float = 0.0,
    max_backoff: float = 30.0,
    rng: Optional[random.Random] = None,
) -> T:
    """Run ``attempt(seed)``, reseeding with ``seed+1, seed+2, ...`` on failure.

    Parameters
    ----------
    attempt:
        Callable taking the seed for this try.  It must construct its
        own fresh state per call (algorithms are stateful).
    seed:
        The first seed to try.
    attempts:
        Total tries, including the first.
    retry_on:
        Exception classes that trigger a reseed; anything else
        propagates immediately.
    on_retry:
        Observer called with ``(failed_seed, exception)`` before each
        reseed — CLI paths use it to narrate the recovery.
    backoff:
        Base delay (seconds) slept before each reseeded attempt, grown
        exponentially with **full jitter**: retry ``k`` (1-based) sleeps
        ``uniform(0, min(max_backoff, backoff × 2^(k-1)))``, so many
        workers retrying the same transient never stampede in lockstep.
        The default 0 keeps the historical sleep-free behavior.
    max_backoff:
        Cap on one sleep, bounding the worst-case stall.
    rng:
        Randomness source for the jitter draw (tests inject a seeded
        one; defaults to the module-level :mod:`random`).

    Raises
    ------
    RetriesExhausted
        When every attempt failed; the final failure is chained.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be positive, got {attempts}")
    draw = rng.uniform if rng is not None else random.uniform
    last: Optional[BaseException] = None
    for offset in range(attempts):
        current = seed + offset
        if offset and backoff > 0:
            window = min(max_backoff, backoff * (2 ** (offset - 1)))
            time.sleep(draw(0.0, window))
        try:
            return attempt(current)
        except retry_on as exc:
            last = exc
            if on_retry is not None:
                on_retry(current, exc)
    raise RetriesExhausted(
        f"all {attempts} reseeded attempts failed (seeds "
        f"{seed}..{seed + attempts - 1})"
    ) from last
