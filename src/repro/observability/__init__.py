"""Observability: metrics registry, structured traces, and reporting.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.observability.metrics` — dependency-free counters, gauges,
  and timing histograms behind a process-local registry whose snapshots
  merge associatively across worker processes.
* :mod:`repro.observability.trace` — a kill-safe JSON-lines event/span
  recorder, disabled by default (the hot path pays one attribute check),
  wired through the simulators, adversaries, and the game supervisor.
* :mod:`repro.observability.stats` — aggregation of a trace file into
  the human-readable report served by ``repro.cli stats``.
* :mod:`repro.observability.timers` — phase-attribution timers breaking
  campaign wall-clock down into named phases (IPC vs. compute vs.
  fsync), recorded as registry histograms so worker snapshots merge.
* :mod:`repro.observability.flightrec` — an always-on bounded ring of
  recent events, dumped kill-safely to JSON lines on supervisor faults.
* :mod:`repro.observability.export` — Prometheus-text / JSON exporters
  over registry snapshots and the ``live.json`` campaign telemetry file
  behind ``repro campaign watch``.

Only ``metrics``, ``trace``, ``timers``, and ``flightrec`` are imported
eagerly: low-level modules (``repro.graphs.traversal``) import the
registry from here, so ``stats`` — which pulls in the analysis layer —
is loaded lazily via PEP 562 to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.observability.flightrec import (
    FLIGHT,
    FlightRecorder,
    find_flight_dumps,
    read_flight_dump,
)
from repro.observability.metrics import (
    BoundCounter,
    BoundHistogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.observability.timers import (
    NULL_TIMER,
    NullTimer,
    PhaseTimer,
    attribution_coverage,
    phase_attribution,
    phase_timer,
    phase_timers_enabled,
    set_phase_scope,
    set_phase_timers,
    timed_phases,
)
from repro.observability.trace import (
    TRACER,
    JsonlTraceRecorder,
    merge_trace_shards,
    read_trace,
    tracing,
)

__all__ = [
    "BoundCounter",
    "BoundHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "TRACER",
    "JsonlTraceRecorder",
    "tracing",
    "read_trace",
    "merge_trace_shards",
    "PhaseTimer",
    "NullTimer",
    "NULL_TIMER",
    "phase_timer",
    "phase_timers_enabled",
    "set_phase_timers",
    "set_phase_scope",
    "timed_phases",
    "phase_attribution",
    "attribution_coverage",
    "FlightRecorder",
    "FLIGHT",
    "find_flight_dumps",
    "read_flight_dump",
    "aggregate",
    "aggregate_file",
    "render_stats",
    "render_phase_table",
    "format_metrics",
]

_LAZY_STATS = {
    "aggregate",
    "aggregate_file",
    "render_stats",
    "render_phase_table",
    "format_metrics",
}


def __getattr__(name: str):
    if name in _LAZY_STATS:
        from repro.observability import stats

        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
