#!/usr/bin/env python3
"""Theorem 3 live: (2k-2)-coloring k-partite graphs needs Ω(n) locality.

The hard instance G* is a chain of gadgets (k x k node grids, adjacent
iff differing in both coordinates).  Under any proper (2k-2)-coloring a
gadget is exactly one of row-colorful / column-colorful (Claim 4.5), and
the whole chain must agree (Lemma 4.6).  The adversary colors the two end
gadgets while their views are disjoint, then transposes the far fragment
if needed so the ends disagree — making completion impossible.
"""

from repro.adversaries import GadgetAdversary
from repro.analysis.tables import render_table
from repro.core import GreedyOnlineColorer
from repro.families import GadgetChain
from repro.verify.gadget_props import classify_gadget


def main() -> None:
    # Show the structural dichotomy first (Claim 4.5).
    chain = GadgetChain(3, 3)
    row_coloring = {node: chain.canonical_color(node) + 1 for node in chain.graph.nodes()}
    verdict = classify_gadget(
        [chain.row(0, i) for i in range(3)],
        [chain.column(0, j) for j in range(3)],
        row_coloring,
    )
    print(f"Canonical row coloring of G*(k=3): gadget 0 is {verdict}-colorful")
    print()

    rows = []
    for k in (3, 4):
        for T in (1, 2, 4):
            adversary = GadgetAdversary(k=k, locality=T)
            result = adversary.run(GreedyOnlineColorer())
            rows.append(
                [
                    k,
                    2 * k - 2,
                    T,
                    adversary.length,
                    k * k * adversary.length,
                    result.stats.get("head_class", "-"),
                    result.stats.get("tail_class", "-"),
                    result.stats.get("tail_committed", "-"),
                    "DEFEATED" if result.won else "survived",
                ]
            )
    print("Theorem 3: end-gadget transposition adversary")
    print(
        render_table(
            ["k", "colors", "T", "gadgets", "n", "head", "tail(pre)",
             "commit", "verdict"],
            rows,
        )
    )
    print()
    print("The chain length needed is only 2T+3, so the defeated locality "
          "scales linearly with n — the Ω(n) bound.")


if __name__ == "__main__":
    main()
