"""Exporters: registry snapshots as Prometheus text or JSON, plus the
live campaign status file that ``repro campaign watch`` renders.

The metrics registry speaks plain dicts (:meth:`MetricsRegistry.snapshot`);
this module translates them outward:

* :func:`to_prometheus` renders a snapshot in the Prometheus text
  exposition format (``# TYPE`` lines, sanitized metric names,
  histograms expanded to ``_count``/``_sum``/``_min``/``_max`` series)
  so a scrape target — or the ROADMAP-3 API server's ``/metrics``
  endpoint — can serve harness metrics with zero new dependencies.
* :func:`to_json` is the stable JSON shape for the same data.
* :func:`write_live_status` / :func:`read_live_status` implement the
  telemetry channel between a running campaign and observers: the pool
  drain loop atomically rewrites one small ``live.json`` under the
  campaign store (~1 Hz), and ``repro campaign watch`` / ``repro stats
  --live`` poll it.  A file is the right transport here — it needs no
  server, survives the writer's death with the last known state intact,
  and the atomic-rename write means readers never see a torn JSON.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Any, Dict, Mapping, Optional

#: Live status filename inside a campaign store directory.
LIVE_STATUS_FILE = "live.json"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    """A registry instrument name as a valid Prometheus metric name."""
    return prefix + _NAME_SANITIZER.sub("_", name)


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def to_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro_") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Counters map to ``counter`` series, gauges to ``gauge``, and each
    histogram summary to four ``gauge`` series suffixed ``_count`` /
    ``_sum`` / ``_min`` / ``_max`` (the registry keeps streaming
    summaries, not buckets, so native Prometheus histograms do not
    apply).  Dots and other invalid characters in instrument names
    (``phase_seconds.ack-drain``) become underscores.
    """
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = _prom_name(prefix, name)
        for suffix in ("count", "sum", "min", "max"):
            series = f"{metric}_{suffix}"
            lines.append(f"# TYPE {series} gauge")
            lines.append(f"{series} {_prom_value(summary.get(suffix))}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(snapshot: Mapping[str, Any], indent: int = 2) -> str:
    """A registry snapshot as stable, sorted JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Live campaign status
# ----------------------------------------------------------------------
def live_status_path(root: str) -> str:
    """Where a campaign rooted at ``root`` publishes live telemetry."""
    return os.path.join(root, LIVE_STATUS_FILE)


def write_live_status(root: str, status: Mapping[str, Any]) -> str:
    """Atomically publish ``status`` (plus a wall-clock stamp) under
    ``root``; returns the path.  Failures are swallowed — telemetry
    must never fail the campaign it is reporting on."""
    payload = dict(status)
    payload.setdefault("written_at", time.time())
    path = live_status_path(root)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return path


def read_live_status(root: str) -> Optional[Dict[str, Any]]:
    """The last published status under ``root``, or ``None`` when no
    campaign has written one (or the file is unreadable)."""
    try:
        with open(live_status_path(root), "r", encoding="utf-8") as handle:
            status = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return status if isinstance(status, dict) else None


def render_live_status(status: Mapping[str, Any]) -> str:
    """Human-readable rendering of one live status record."""
    age = time.time() - float(status.get("written_at", 0.0))
    done = status.get("done", False)
    lines = [
        "campaign {} (updated {:.1f}s ago)".format(
            "finished" if done else "running", max(age, 0.0)
        )
    ]
    counts = (
        ("played", "games_played"),
        ("deduped", "games_deduped"),
        ("errors", "games_errors"),
        ("quarantined", "games_quarantined"),
        ("requeued", "games_requeued"),
        ("restarts", "worker_restarts"),
    )
    parts = [
        f"{label} {status[key]}" for label, key in counts if key in status
    ]
    if parts:
        lines.append("  " + "  ".join(parts))
    pending = status.get("queue_depth")
    in_flight = status.get("in_flight")
    if pending is not None or in_flight is not None:
        lines.append(
            f"  queue depth {pending if pending is not None else '?'}"
            f"  in-flight {in_flight if in_flight is not None else '?'}"
        )
    workers = status.get("workers") or []
    now = status.get("monotonic")
    for worker in workers:
        beat = worker.get("last_seen")
        if now is not None and beat is not None:
            beat_age = f"{max(float(now) - float(beat), 0.0):5.1f}s"
        else:
            beat_age = "    ?"
        lines.append(
            "  worker {index}: pid {pid}  {state:<7} heartbeat {age} ago  "
            "games {games}".format(
                index=worker.get("index", "?"),
                pid=worker.get("pid", "?"),
                state=worker.get("state", "?"),
                age=beat_age,
                games=worker.get("games", 0),
            )
        )
    phases = status.get("phases") or {}
    if phases:
        total = sum(phases.values()) or 1.0
        top = sorted(phases.items(), key=lambda item: -item[1])[:6]
        lines.append(
            "  phases: "
            + "  ".join(
                f"{name} {seconds:.2f}s ({seconds / total:.0%})"
                for name, seconds in top
            )
        )
    return "\n".join(lines)
