"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------
``demo``
    Run one of the example scenarios (quickstart rendering, adversary
    duel, ...), printing the same output as the scripts in examples/.
``adversary``
    Run a lower-bound adversary (theorem1/theorem2/theorem3/theorem5)
    against a chosen victim at a chosen locality.
``upper-bound``
    Run an upper-bound algorithm (akbari/unify) on a chosen family at
    the paper's locality budget and verify the coloring.
``report``
    Regenerate EXPERIMENTS.md content on stdout.
``stats``
    Summarize a trace recorded with ``--trace`` (event counts, games by
    adversary, reveal totals, cache hit rate).

The game-playing subcommands (``adversary``, ``upper-bound``,
``tournament``) accept ``--trace FILE`` to record a structured
JSON-lines trace and ``--metrics`` to print the metrics-registry totals
after the run.

Exit statuses: 0 success, 1 structured failure (an adversary survived,
a harness error), 2 bad invocation (reported as ``repro: error: ...``).

Examples::

    python -m repro.cli adversary theorem1 --victim akbari --locality 2
    python -m repro.cli adversary theorem1 --victim greedy --locality 2 \\
        --trace /tmp/t.jsonl
    python -m repro.cli stats /tmp/t.jsonl
    python -m repro.cli upper-bound akbari --side 24
    python -m repro.cli upper-bound unify-triangular --side 14
    python -m repro.cli report
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from contextlib import nullcontext
from typing import Optional

from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.grid import GridAdversary
from repro.adversaries.reduction import reduce_to_grid
from repro.adversaries.torus import TorusAdversary
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.families.triangular import TriangularGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.models.simulation import LocalAsOnline
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER, tracing
from repro.oracles import CliqueChainOracle, TriangularOracle
from repro.robustness.errors import ReproError
from repro.robustness.retry import retry_with_reseed
from repro.robustness.supervisor import call_with_timeout
from repro.verify.coloring import assert_proper


class UserError(Exception):
    """A bad invocation (unknown name, inconsistent flags).  ``main``
    reports it as ``repro: error: ...`` on stderr with exit status 2 —
    argparse's own convention for usage errors."""


def _print_metrics() -> None:
    from repro.observability.stats import format_metrics

    print("\nmetrics:")
    print(format_metrics(get_registry().snapshot()))


def _make_victim(name: str):
    factories = {
        "greedy": GreedyOnlineColorer,
        "akbari": AkbariBipartiteColoring,
        "local-canonical": lambda: LocalAsOnline(CanonicalLocalColorer()),
    }
    if name not in factories:
        raise UserError(
            f"unknown victim {name!r}; choose from {sorted(factories)}"
        )
    return factories[name]()


def cmd_adversary(args: argparse.Namespace) -> int:
    victim = _make_victim(args.victim)
    trace = tracing(args.trace) if args.trace else nullcontext()
    with trace:
        with TRACER.span(
            "game", adversary=args.theorem, victim=args.victim
        ) as span:
            if args.theorem == "theorem1":
                result = GridAdversary(locality=args.locality).run(victim)
            elif args.theorem == "theorem2":
                result = TorusAdversary(
                    locality=args.locality, topology=args.topology
                ).run(victim)
            elif args.theorem == "theorem3":
                result = GadgetAdversary(
                    k=args.k, locality=args.locality
                ).run(victim)
            elif args.theorem == "theorem5":
                inner = UnifyColoring(CliqueChainOracle(args.k, args.k))
                result = GridAdversary(locality=args.locality).run(
                    reduce_to_grid(inner, k=args.k)
                )
            else:  # pragma: no cover - argparse restricts choices
                raise UserError(f"unknown theorem {args.theorem!r}")
            span.note(
                reason=result.reason, won=result.won, forfeit=result.forfeit
            )
    verdict = "DEFEATED" if result.won else "survived"
    print(f"{args.theorem} vs {args.victim} at T={args.locality}: {verdict}")
    print(f"  how: {result.reason}")
    if result.improper_edge is not None:
        print(f"  witness edge: {result.improper_edge}")
    for key, value in sorted(result.stats.items()):
        print(f"  {key}: {value}")
    if args.metrics:
        _print_metrics()
    return 0 if result.won else 1


def cmd_upper_bound(args: argparse.Namespace) -> int:
    if args.algorithm == "akbari":
        grid = SimpleGrid(args.side, args.side)
        graph = grid.graph
        n = graph.num_nodes
        budget = args.locality or 3 * math.ceil(math.log2(n))
        make_algorithm = AkbariBipartiteColoring
        colors = 3
    elif args.algorithm == "unify-triangular":
        tri = TriangularGrid(args.side)
        graph = tri.graph
        n = graph.num_nodes
        budget = args.locality or recommended_locality(3, 1, n)
        make_algorithm = lambda: UnifyColoring(TriangularOracle())  # noqa: E731
        colors = 4
    else:  # pragma: no cover - argparse restricts choices
        raise UserError(f"unknown algorithm {args.algorithm!r}")

    # Randomized reveal orders can fail for seed-specific reasons (an
    # order that strands the oracle); retry with fresh seeds rather than
    # aborting the run.
    def attempt(seed: int):
        sim = OnlineLocalSimulator(
            graph, make_algorithm(), locality=budget, num_colors=colors
        )
        order = scattered_reveal_order(sorted(graph.nodes()), seed=seed)
        coloring = call_with_timeout(lambda: sim.run(order), args.timeout)
        assert_proper(graph, coloring, max_colors=colors)
        return seed

    trace = tracing(args.trace) if args.trace else nullcontext()
    with trace:
        with TRACER.span(
            "upper-bound", algorithm=args.algorithm, side=args.side, n=n
        ) as span:
            used_seed = retry_with_reseed(
                attempt,
                seed=args.seed,
                attempts=args.retries,
                on_retry=lambda seed, exc: print(
                    f"seed {seed} failed ({type(exc).__name__}: {exc}); "
                    "reseeding"
                ),
            )
            span.note(seed=used_seed, locality=budget)
    print(
        f"{args.algorithm}: proper {colors}-coloring of {n} nodes at "
        f"T={budget} under an adversarial order (seed {used_seed})"
    )
    if args.metrics:
        _print_metrics()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate

    sys.stdout.write(generate())
    return 0


def cmd_tournament(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.analysis.tournament import (
        clean_sweep,
        forfeit_rows,
        honest_rows,
        run_tournament,
    )
    from repro.robustness.supervisor import GamePolicy

    if args.resume and args.journal is None:
        raise UserError(
            "--resume needs --journal PATH (there is no journal to "
            "resume from)"
        )

    rows = run_tournament(
        locality=args.locality,
        include_faulty=args.include_faulty,
        policy=GamePolicy(step_budget=args.step_budget, timeout=args.timeout),
        journal_path=args.journal,
        resume=args.resume,
        workers=args.workers,
        trace_path=args.trace,
    )

    def verdict(row) -> str:
        if row.forfeit:
            return "FORFEIT"
        return "DEFEATED" if row.won else "survived"

    print(render_table(
        ["adversary", "victim", "T", "verdict", "how"],
        [[r.adversary, r.victim, r.locality, verdict(r), r.reason]
         for r in rows],
    ))
    honest = honest_rows(rows)
    swept = clean_sweep(honest)
    forfeits = forfeit_rows(rows)
    print(
        f"\nclean sweep over honest victims: {swept} "
        f"({sum(r.won for r in honest)}/{len(honest)})"
    )
    if forfeits:
        print(f"forfeits: {len(forfeits)}")
        for row in forfeits:
            cause = row.error_type
            if row.failed_at_step is not None:
                cause += f" at step {row.failed_at_step}"
            print(f"  {row.adversary} vs {row.victim}: {row.reason}"
                  + (f" [{cause}]" if cause else "")
                  + (f" ({row.detail})" if row.detail else ""))
    if args.metrics:
        _print_metrics()
    return 0 if swept and all(r.won for r in rows) else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.observability.stats import aggregate_file, render_stats

    if not os.path.exists(args.trace):
        raise UserError(f"no trace file at {args.trace!r}")
    print(render_stats(aggregate_file(args.trace), top=args.top))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of the PODC 2024 Online-LOCAL "
        "grid-coloring lower bounds.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    adversary = sub.add_parser("adversary", help="run a lower-bound adversary")
    adversary.add_argument(
        "theorem",
        choices=["theorem1", "theorem2", "theorem3", "theorem5"],
    )
    adversary.add_argument("--victim", default="greedy")
    adversary.add_argument("--locality", type=int, default=1)
    adversary.add_argument("--topology", default="torus",
                           choices=["torus", "cylinder"])
    adversary.add_argument("--k", type=int, default=3)
    adversary.set_defaults(func=cmd_adversary)

    upper = sub.add_parser("upper-bound", help="run an upper-bound algorithm")
    upper.add_argument("algorithm", choices=["akbari", "unify-triangular"])
    upper.add_argument("--side", type=int, default=16)
    upper.add_argument("--locality", type=int, default=None)
    upper.add_argument("--seed", type=int, default=0)
    upper.add_argument(
        "--retries", type=_positive_int, default=3,
        help="reseeded attempts before giving up (default 3)",
    )
    upper.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget per attempt in seconds",
    )
    upper.set_defaults(func=cmd_upper_bound)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md on stdout")
    report.set_defaults(func=cmd_report)

    tournament = sub.add_parser(
        "tournament", help="run every adversary against every victim"
    )
    tournament.add_argument("--locality", type=int, default=1)
    tournament.add_argument(
        "--include-faulty", action="store_true",
        help="add the fault-injection victim family to the sweep",
    )
    tournament.add_argument(
        "--step-budget", type=int, default=None,
        help="max algorithm steps per game",
    )
    tournament.add_argument(
        "--timeout", type=float, default=30.0,
        help="wall-clock budget per game in seconds (default 30)",
    )
    tournament.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append completed games to a JSON-lines journal",
    )
    tournament.add_argument(
        "--resume", action="store_true",
        help="skip games already recorded in --journal (requires --journal)",
    )
    tournament.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial; rows "
        "come back in the same order either way)",
    )
    tournament.set_defaults(func=cmd_tournament)

    for command in (adversary, upper, tournament):
        command.add_argument(
            "--trace", default=None, metavar="FILE",
            help="record a JSON-lines game trace to FILE (inspect with "
            "the stats subcommand)",
        )
        command.add_argument(
            "--metrics", action="store_true",
            help="print the metrics-registry totals after the run",
        )

    stats = sub.add_parser(
        "stats", help="summarize a trace recorded with --trace"
    )
    stats.add_argument("trace", metavar="TRACE", help="trace file to read")
    stats.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="slowest games to list (default 5)",
    )
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UserError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
