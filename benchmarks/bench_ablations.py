"""Experiment ABL: ablations of the design choices the proofs call out.

1. **Flip the smaller group** (Akbari): flipping the larger group instead
   blows past the same locality budget on merge-heavy orders.
2. **Gap choice ℓ ∈ {2,3}** (Lemma 3.6): a fixed gap forfeits the parity
   guarantee and the path builder stalls below the target b-value.
3. **Identifier anonymity**: with leaked grid coordinates, a zero-locality
   memoryless algorithm 3-colors any grid — the lower bounds live
   entirely in the model's anonymity + adaptive commitment.
4. **Odd columns** (Theorem 2): on an even-sided torus the two-row
   argument evaporates (rows are even cycles, b-values even, and the
   graph is bipartite — Akbari at the log-budget survives the same
   two-row-first order that kills it on odd tori).
"""

import math


from repro.adversaries.path_builder import PathBuilder
from repro.analysis.tables import render_table
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CheatingCoordinateColorer
from repro.families.grids import SimpleGrid, ToroidalGrid
from repro.families.random_graphs import random_reveal_order
from repro.models.adaptive import FloatingGridInstance
from repro.models.online_local import OnlineLocalSimulator
from repro.verify.coloring import is_proper


# ----------------------------------------------------------------------
# Ablation 1: flip smaller vs flip larger
# ----------------------------------------------------------------------
def merge_heavy_run(flip_larger: bool, locality: int):
    """Anchor a line of clashing groups, then zip them together."""
    grid = SimpleGrid(16, 121)
    anchors = [(8, col) for col in range(4, 121, 13)]  # 13 > 2T+2 for T<=5
    rest = [v for v in sorted(grid.graph.nodes()) if v not in set(anchors)]
    algorithm = AkbariBipartiteColoring(flip_larger=flip_larger)
    sim = OnlineLocalSimulator(grid.graph, algorithm, locality=locality, num_colors=3)
    for v in anchors + rest:
        sim.reveal(v)
    coloring = sim.coloring()
    return is_proper(grid.graph, coloring), algorithm.flip_count


def test_ablation_flip_direction():
    rows = []
    for flip_larger in (False, True):
        proper, flips = merge_heavy_run(flip_larger, locality=12)
        rows.append(
            ["flip-larger" if flip_larger else "flip-smaller (paper)",
             12, flips, "proper" if proper else "IMPROPER"]
        )
    print()
    print("Ablation: which group to flip on a parity conflict")
    print(render_table(["policy", "T", "flips", "outcome"], rows))
    paper_proper = rows[0][3] == "proper"
    assert paper_proper, "the paper's policy must survive this order"
    # The flip-larger policy performs at least as many flips; on this
    # order it typically performs more (each merge re-flips the big blob).
    assert rows[1][2] >= rows[0][2]


# ----------------------------------------------------------------------
# Ablation 2: adaptive vs fixed gap in Lemma 3.6
# ----------------------------------------------------------------------
def test_ablation_gap_policy():
    rows = []
    outcomes = {}
    for policy in ("parity", "fixed"):
        instance = FloatingGridInstance(
            AkbariBipartiteColoring(), locality=1, num_colors=3, declared_n=10 ** 9
        )
        builder = PathBuilder(instance, gap_policy=policy)
        built = builder.build(5)
        achieved = "improper" if built is None else built.b
        rows.append([policy, achieved, builder.stalls, builder.reveals])
        outcomes[policy] = (built, builder)
    print()
    print("Ablation: Lemma 3.6 gap choice (target b >= 5, victim=akbari@T=1)")
    print(render_table(["gap policy", "b achieved", "stalls", "reveals"], rows))
    built, builder = outcomes["parity"]
    assert built is None or built.b >= 5


# ----------------------------------------------------------------------
# Ablation 3: identifier anonymity
# ----------------------------------------------------------------------
def test_ablation_coordinate_cheat():
    grid = SimpleGrid(20, 20)
    sim = OnlineLocalSimulator(
        grid.graph,
        CheatingCoordinateColorer(),
        locality=0,
        num_colors=3,
        leak_labels=True,
    )
    coloring = sim.run(random_reveal_order(sorted(grid.graph.nodes()), seed=4))
    assert is_proper(grid.graph, coloring)
    print("\nAblation: with leaked coordinates, locality 0 suffices — the "
          "lower bound is about anonymity, not graph structure")


# ----------------------------------------------------------------------
# Ablation 4: odd vs even torus columns
# ----------------------------------------------------------------------
def test_ablation_even_torus_is_easy():
    side = 16  # even: bipartite torus
    torus = ToroidalGrid(side, side)
    budget = 3 * math.ceil(math.log2(side * side)) + 2
    sim = OnlineLocalSimulator(
        torus.graph, AkbariBipartiteColoring(), locality=budget, num_colors=3
    )
    # The Theorem 2 killer order: two far rows first, then the rest.
    order = [(3, j) for j in range(side)] + [(11, j) for j in range(side)]
    order += [v for v in sorted(torus.graph.nodes()) if v not in set(order)]
    coloring = sim.run(order)
    assert is_proper(torus.graph, coloring)
    print("\nAblation: the two-row order is harmless on an even torus "
          "(bipartite; Equation (1) involves even b-values only)")


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def test_bench_flip_smaller(benchmark):
    proper, __ = benchmark(lambda: merge_heavy_run(False, locality=12))
    assert proper
