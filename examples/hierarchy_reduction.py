#!/usr/bin/env python3
"""Theorem 5 live: the lower bound lifts from grids to every
:math:`\\mathcal{L}_{k,\\ell}` family via the Lemma 5.7 reduction.

We take the paper's own upper-bound algorithm — the (k+1)-coloring
type-unifier with a clique-chain oracle for the hierarchy G_k — wrap it
through the black-box reduction down to a 3-colorer of the grid, and
defeat it with the Theorem 1 adversary.  Since the reduction preserves
locality exactly, the defeat of the reduced algorithm IS the Ω(log n)
lower bound for the original.
"""

from repro.adversaries import GridAdversary, reduce_to_grid
from repro.analysis.tables import render_table
from repro.core import GreedyOnlineColorer, UnifyColoring
from repro.core.unify import recommended_locality
from repro.families import Hierarchy
from repro.families.random_graphs import random_reveal_order
from repro.models import OnlineLocalSimulator
from repro.oracles import CliqueChainOracle
from repro.verify import is_proper


def main() -> None:
    # Upper side: the unifier properly (k+1)-colors G_k at the budget.
    k = 3
    hierarchy = Hierarchy(k, 7, 7)
    budget = recommended_locality(k, k, hierarchy.num_nodes)
    algorithm = UnifyColoring(CliqueChainOracle(k, k))
    sim = OnlineLocalSimulator(
        hierarchy.graph, algorithm, locality=budget, num_colors=k + 1
    )
    order = random_reveal_order(sorted(hierarchy.graph.nodes(), key=repr), seed=3)
    coloring = sim.run(order)
    print(f"G_{k} over a 7x7 grid ({hierarchy.num_nodes} nodes): "
          f"{k + 1}-coloring at T={budget} is "
          f"{'proper' if is_proper(hierarchy.graph, coloring) else 'IMPROPER'}")
    print()

    # Lower side: reduce and defeat.
    rows = []
    for k in (3, 4):
        for name, factory in {
            "unify+oracle": lambda k=k: UnifyColoring(CliqueChainOracle(k, k)),
            "greedy": lambda k=k: GreedyOnlineColorer(),
        }.items():
            reduced = reduce_to_grid(factory(), k=k)
            result = GridAdversary(locality=1).run(reduced)
            rows.append(
                [k, name, reduced.name, "DEFEATED" if result.won else "survived"]
            )
    print("Theorem 5: grid adversary vs reduced (k+1)-colorers of G_k")
    print(render_table(["k", "inner", "reduced name", "verdict"], rows))


if __name__ == "__main__":
    main()
