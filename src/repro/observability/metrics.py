"""Process-local metrics: counters, gauges, and timing histograms.

The harness plays thousands of reveals per tournament but, before this
module, kept almost no numbers about them — and the few it did keep
(:class:`~repro.graphs.traversal.BallCache`'s hit counters) lived in
class globals that never crossed a multiprocessing boundary.  The
:class:`MetricsRegistry` fixes both problems:

* **Named instruments** — ``registry.inc("reveals_total")``,
  ``registry.observe("game_wall_seconds", 0.41)`` — are created lazily
  and returned as stable objects, so call sites never need set-up code.
* **Snapshot / merge** — :meth:`MetricsRegistry.snapshot` produces a
  plain JSON-able dict; :meth:`MetricsRegistry.merge` folds a snapshot
  back in.  Merge is associative and commutative (counters add, gauges
  keep the max, histograms add counts/sums and widen min/max), so
  parallel workers can ship their per-game snapshots to the parent in
  any order and the folded totals equal a serial run's.

Instrument names used across the harness (see ``docs/observability.md``):

==========================  ============================================
``reveals_total``           Online-LOCAL reveals (all simulator kinds)
``ball_cache_hits``         :class:`BallCache` memoized ball hits
``ball_cache_misses``       :class:`BallCache` BFS recomputations
``ball_cache_bucket_reattach``  shared-pool buckets repaired after LRU orphaning
``adversary_rounds``        b-value concatenation / commitment rounds
``supervisor_forfeits``     games decided by forfeit, not on the board
``local_outputs_total``     LOCAL-model node outputs computed
``slocal_steps_total``      SLOCAL sequential steps served
``gkm_emulations_total``    GKM ball emulations executed
``game_wall_seconds``       histogram of supervised game durations
``campaign_games_played``   campaign games actually played this run
``campaign_games_deduped``  campaign games answered from the result store
``campaign_game_retries``   supervised re-attempts inside campaign games
``campaign_game_errors``    campaign games that exhausted their retries
``campaign_worker_restarts``    pool workers respawned after a death/hang
``campaign_lease_expirations``  leases expired (hung worker SIGKILLed)
``campaign_games_requeued``     in-flight games requeued after worker loss
``campaign_games_quarantined``  poison games stored as forfeit rows
``campaign_pool_degradations``  pools that fell back to serial execution
``campaign_worker_heartbeats``  worker heartbeat acks received by the parent
``campaign_queue_depth``    gauge: max pending games observed by the pool
``campaign_in_flight``      gauge: max leased (in-flight) games observed
``phase_seconds.<phase>``   histograms: per-phase wall-clock attribution
                            (:mod:`repro.observability.timers`)
==========================  ============================================

The process-local default registry is reached through
:func:`get_registry`; :func:`scoped_registry` swaps in a fresh one for a
delimited stretch of work (one worker game, one benchmark config) and
restores the previous registry afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-set value with high-water-mark merge semantics.

    Merging snapshots keeps the maximum, which is the only choice that
    stays associative and commutative across arbitrarily ordered worker
    snapshots.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming summary of observed values: count, sum, min, max."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """A process-local collection of named instruments.

    Instruments are created on first use and the same object is returned
    on every subsequent request, so hot call sites may cache the handle
    or just call the :meth:`inc`/:meth:`observe` conveniences.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    # Conveniences for one-shot call sites.
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-able dict of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
                if g.value is not None
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges keep the maximum, histograms add counts and
        sums and widen min/max — all associative and commutative, so any
        merge order over any partition of the work yields identical
        totals.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if gauge.value is None or value > gauge.value:
                gauge.value = value
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += summary.get("count", 0)
            hist.total += summary.get("sum", 0.0)
            for bound, pick in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is None:
                    continue
                attr = "minimum" if bound == "min" else "maximum"
                current = getattr(hist, attr)
                setattr(
                    hist,
                    attr,
                    incoming if current is None else pick(current, incoming),
                )

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        for counter in self.counters.values():
            counter.value = 0
        for gauge in self.gauges.values():
            gauge.value = None
        for hist in self.histograms.values():
            hist.count = 0
            hist.total = 0.0
            hist.minimum = None
            hist.maximum = None


class _NullCounter(Counter):
    """A shared sink counter whose :meth:`inc` discards the increment."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    """A shared sink gauge whose :meth:`set` discards the value."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    """A shared sink histogram whose :meth:`observe` discards the value."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the benchmark's reference point
    for measuring what the instrumentation itself costs.

    Both the name-based conveniences and the instrument getters are
    no-ops: the getters hand back shared sink instruments (never stored,
    so :meth:`~MetricsRegistry.snapshot` stays empty), which keeps
    :class:`BoundCounter` call sites suppressed too.
    """

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: The process-local default registry.
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The currently active registry (process-local)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


class BoundCounter:
    """A counter handle that re-binds itself to the active registry.

    The hottest call sites (every reveal, every ball query) run millions
    of times per sweep; going through ``get_registry().inc(name)`` each
    time pays a function call plus a dict lookup per event, which
    measurably drags the tracing-*off* configuration.  A module-level
    ``BoundCounter`` instead caches the underlying :class:`Counter` and
    pays only an identity check against the active registry per event,
    re-resolving whenever :func:`set_registry` / :func:`scoped_registry`
    swaps registries — so scoped workers and benchmarks still see
    exactly their own deltas, and a :class:`NullRegistry` (whose
    ``counter()`` returns a shared sink) still suppresses recording.
    """

    __slots__ = ("name", "_registry", "_counter")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Optional[MetricsRegistry] = None
        self._counter: Optional[Counter] = None

    def inc(self, amount: int = 1) -> None:
        registry = _registry
        if registry is not self._registry:
            self._counter = registry.counter(self.name)
            self._registry = registry
        self._counter.inc(amount)


class BoundHistogram:
    """A histogram handle that re-binds itself to the active registry.

    The phase timers (:mod:`repro.observability.timers`) observe a
    duration on every timed phase exit; like :class:`BoundCounter` they
    cache the underlying :class:`Histogram` and pay only an identity
    check against the active registry per observation, re-resolving
    whenever the registry is swapped.  A :class:`NullRegistry` (whose
    ``histogram()`` returns a shared sink) suppresses recording.
    """

    __slots__ = ("name", "_registry", "_histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Optional[MetricsRegistry] = None
        self._histogram: Optional[Histogram] = None

    def observe(self, value: float) -> None:
        registry = _registry
        if registry is not self._registry:
            self._histogram = registry.histogram(self.name)
            self._registry = registry
        self._histogram.observe(value)


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Activate a fresh (or given) registry for the dynamic extent.

    Parallel workers scope each game so its snapshot is exactly that
    game's delta; benchmarks scope each configuration so repeated runs
    in one process never accumulate stale counts.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
