"""repro — executable reproduction of "A Tight Lower Bound for 3-Coloring
Grids in the Online-LOCAL Model" (Chang, Mishra, Nguyen, Yang, Yeh,
PODC 2024).

The package builds, from scratch, everything the paper's theorems touch:

* the LOCAL / SLOCAL / Online-LOCAL model simulators
  (:mod:`repro.models`), including the adaptive deferred-embedding
  instances that give the Online-LOCAL adversary its paper-granted
  powers;
* every graph family (:mod:`repro.families`): simple / cylindrical /
  toroidal grids, triangular grids, k-trees, the Section 4 gadget chain
  :math:`G^*`, and the Section 5 duplicate hierarchy :math:`G_k`;
* the b-value potential machinery (:mod:`repro.core.bvalue`);
* the upper-bound algorithms — Akbari et al.'s bipartite 3-coloring and
  the paper's generalized (k+1)-coloring with type unification
  (:mod:`repro.core`), plus the oracles of Definition 1.4
  (:mod:`repro.oracles`);
* executable adversaries for Theorems 1, 2, 3, and 5
  (:mod:`repro.adversaries`), with machine-checked win certificates
  (:mod:`repro.verify`).

Quickstart::

    from repro.families import SimpleGrid
    from repro.core import AkbariBipartiteColoring
    from repro.models import OnlineLocalSimulator

    grid = SimpleGrid(32, 32)
    simulator = OnlineLocalSimulator(
        grid.graph, AkbariBipartiteColoring(), locality=36, num_colors=3
    )
    coloring = simulator.run(sorted(grid.graph.nodes()))
"""

__version__ = "1.0.0"

# Convenience re-exports of the headline API.  Subpackages remain the
# canonical import paths; these cover the common quickstart flows.
from repro.adversaries import (  # noqa: E402
    GadgetAdversary,
    GridAdversary,
    HierarchyReduction,
    TorusAdversary,
    reduce_to_grid,
)
from repro.core import (  # noqa: E402
    AkbariBipartiteColoring,
    GreedyOnlineColorer,
    UnifyColoring,
)
from repro.families import (  # noqa: E402
    CylindricalGrid,
    GadgetChain,
    Hierarchy,
    SimpleGrid,
    ToroidalGrid,
    TriangularGrid,
)
from repro.models import OnlineLocalSimulator  # noqa: E402
from repro.verify import assert_proper, is_proper  # noqa: E402

__all__ = [
    "GridAdversary",
    "TorusAdversary",
    "GadgetAdversary",
    "HierarchyReduction",
    "reduce_to_grid",
    "AkbariBipartiteColoring",
    "GreedyOnlineColorer",
    "UnifyColoring",
    "SimpleGrid",
    "CylindricalGrid",
    "ToroidalGrid",
    "TriangularGrid",
    "GadgetChain",
    "Hierarchy",
    "OnlineLocalSimulator",
    "assert_proper",
    "is_proper",
]
