"""Observability: metrics registry, structured traces, and reporting.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.observability.metrics` — dependency-free counters, gauges,
  and timing histograms behind a process-local registry whose snapshots
  merge associatively across worker processes.
* :mod:`repro.observability.trace` — a kill-safe JSON-lines event/span
  recorder, disabled by default (the hot path pays one attribute check),
  wired through the simulators, adversaries, and the game supervisor.
* :mod:`repro.observability.stats` — aggregation of a trace file into
  the human-readable report served by ``repro.cli stats``.

Only ``metrics`` and ``trace`` are imported eagerly: low-level modules
(``repro.graphs.traversal``) import the registry from here, so ``stats``
— which pulls in the analysis layer — is loaded lazily via PEP 562 to
keep the import graph acyclic.
"""

from __future__ import annotations

from repro.observability.metrics import (
    BoundCounter,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.observability.trace import (
    TRACER,
    JsonlTraceRecorder,
    merge_trace_shards,
    read_trace,
    tracing,
)

__all__ = [
    "BoundCounter",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "TRACER",
    "JsonlTraceRecorder",
    "tracing",
    "read_trace",
    "merge_trace_shards",
    "aggregate",
    "aggregate_file",
    "render_stats",
    "format_metrics",
]

_LAZY_STATS = {"aggregate", "aggregate_file", "render_stats", "format_metrics"}


def __getattr__(name: str):
    if name in _LAZY_STATS:
        from repro.observability import stats

        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
