"""Tests for the generalized (k+1)-coloring algorithm (Theorem 4)."""

import pytest

from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.hierarchy import Hierarchy
from repro.families.ktree import random_ktree
from repro.families.random_graphs import random_reveal_order, scattered_reveal_order
from repro.families.triangular import TriangularGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.oracles import BipartiteOracle, CliqueChainOracle, KTreeOracle, TriangularOracle
from repro.verify.coloring import assert_proper


def run_unify(graph, oracle, order, num_colors, locality=None):
    if locality is None:
        locality = recommended_locality(
            oracle.num_parts, oracle.radius, graph.num_nodes
        )
    algorithm = UnifyColoring(oracle)
    sim = OnlineLocalSimulator(graph, algorithm, locality=locality, num_colors=num_colors)
    coloring = sim.run(order)
    return coloring, algorithm


class TestTriangularGrids:
    @pytest.mark.parametrize("seed", range(3))
    def test_four_coloring_random_orders(self, seed):
        tri = TriangularGrid(12)
        order = random_reveal_order(sorted(tri.graph.nodes()), seed=seed)
        coloring, __ = run_unify(tri.graph, TriangularOracle(), order, num_colors=4)
        assert_proper(tri.graph, coloring, max_colors=4)

    def test_swaps_occur_and_stay_proper(self):
        tri = TriangularGrid(40)
        anchors = [(2, 2), (2, 30), (30, 2), (12, 12)]
        rest = [v for v in sorted(tri.graph.nodes()) if v not in set(anchors)]
        algorithm = UnifyColoring(TriangularOracle())
        sim = OnlineLocalSimulator(tri.graph, algorithm, locality=10, num_colors=4)
        for v in anchors + rest:
            sim.reveal(v)
        assert_proper(tri.graph, sim.coloring(), max_colors=4)
        assert algorithm.swap_count > 0

    def test_first_node_colored_one(self):
        tri = TriangularGrid(8)
        algorithm = UnifyColoring(TriangularOracle())
        sim = OnlineLocalSimulator(tri.graph, algorithm, locality=10, num_colors=4)
        assert sim.reveal((3, 3)) == 1


class TestKTrees:
    @pytest.mark.parametrize("tree_k", (2, 3))
    def test_ktree_coloring(self, tree_k):
        tree = random_ktree(tree_k, 50, seed=tree_k)
        order = random_reveal_order(sorted(tree.graph.nodes(), key=repr), seed=1)
        coloring, __ = run_unify(
            tree.graph,
            KTreeOracle(tree_k),
            order,
            num_colors=tree_k + 2,
        )
        assert_proper(tree.graph, coloring, max_colors=tree_k + 2)


class TestHierarchy:
    def test_g3_coloring(self):
        """(k+1)-coloring G_3 with the clique-chain oracle (Lemma 5.6)."""
        h = Hierarchy(3, 6, 6)
        order = scattered_reveal_order(sorted(h.graph.nodes(), key=repr), seed=2)
        coloring, __ = run_unify(
            h.graph, CliqueChainOracle(3, 3), order, num_colors=4
        )
        assert_proper(h.graph, coloring, max_colors=4)


class TestBipartiteSpecialCase:
    def test_matches_akbari_budget_shape(self):
        """UnifyColoring with the bipartite oracle 3-colors grids."""
        from repro.families.grids import SimpleGrid

        grid = SimpleGrid(9, 9)
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=3)
        coloring, __ = run_unify(grid.graph, BipartiteOracle(), order, num_colors=3)
        assert_proper(grid.graph, coloring, max_colors=3)


class TestBudget:
    def test_recommended_locality_formula(self):
        assert recommended_locality(3, 1, 1024) == 3 * 2 * 10 + 1
        assert recommended_locality(2, 0, 2 ** 8) == 3 * 8
        assert recommended_locality(4, 1, 1) == 2

    def test_needs_k_plus_one_colors(self):
        algorithm = UnifyColoring(TriangularOracle())
        with pytest.raises(ValueError):
            algorithm.reset(n=10, locality=5, num_colors=3)


class TestFrameIsolation:
    def test_overlapping_seen_regions_with_separate_logic_groups(self):
        """Two anchors whose seen balls touch but whose logic regions are
        separate components: oracle propagation from one group's call
        crosses into the other's nodes through the seen region, and must
        NOT corrupt the other group's part frame (regression test)."""
        tri = TriangularGrid(30)
        T = 4  # logic radius T-1 = 3; anchors at distance 2T = 8
        anchors = [(2, 2), (10, 2), (18, 2)]
        algorithm = UnifyColoring(TriangularOracle())
        sim = OnlineLocalSimulator(tri.graph, algorithm, locality=T, num_colors=4)
        for anchor in anchors:
            sim.reveal(anchor)
        # Merge them through the midpoints, then fill everything.
        rest = [v for v in sorted(tri.graph.nodes()) if v not in set(anchors)]
        from repro.graphs.traversal import bfs_distances

        dist = bfs_distances(tri.graph, anchors[0])
        rest.sort(key=lambda v: (dist[v], v))
        for node in rest:
            sim.reveal(node)
        assert_proper(tri.graph, sim.coloring(), max_colors=4)
