"""Gadget colorfulness classification (Definitions 4.2 and 4.4).

A color is *confined* to a row (column) if at least two nodes of that row
(column) share it.  A row (column) is *colorful* if its k nodes use k
distinct colors; a gadget is row-colorful (column-colorful) if some row
(column) is colorful.  Claim 4.5: under a proper (2k-2)-coloring a gadget
is exactly one of the two.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

Node = Hashable
Color = int


def confined_colors(
    lines: Sequence[Sequence[Node]], coloring: Dict[Node, Color]
) -> List[Set[Color]]:
    """Per line (row or column), the set of colors confined to it."""
    result: List[Set[Color]] = []
    for line in lines:
        seen: Dict[Color, int] = {}
        for node in line:
            color = coloring[node]
            seen[color] = seen.get(color, 0) + 1
        result.append({color for color, count in seen.items() if count >= 2})
    return result


def colorful_lines(
    lines: Sequence[Sequence[Node]], coloring: Dict[Node, Color]
) -> List[int]:
    """Indices of lines whose nodes all have distinct colors."""
    return [
        index
        for index, confined in enumerate(confined_colors(lines, coloring))
        if not confined
    ]


def classify_gadget(
    rows: Sequence[Sequence[Node]],
    columns: Sequence[Sequence[Node]],
    coloring: Dict[Node, Color],
) -> str:
    """Classify a properly colored gadget.

    Returns ``"row"`` (row-colorful), ``"column"``, ``"both"``, or
    ``"neither"``.  Claim 4.5 guarantees ``"row"`` or ``"column"``
    exclusively when the coloring is proper and uses ≤ 2k-2 colors; the
    other two values witness a violated precondition and are returned
    (not raised) so tests can assert the claim itself.
    """
    row_colorful = bool(colorful_lines(rows, coloring))
    column_colorful = bool(colorful_lines(columns, coloring))
    if row_colorful and column_colorful:
        return "both"
    if row_colorful:
        return "row"
    if column_colorful:
        return "column"
    return "neither"
