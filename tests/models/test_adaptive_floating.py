"""Tests for the deferred-embedding grid instance (FloatingGridInstance)."""

import pytest

from repro.models.adaptive import ConsistencyError, FloatingGridInstance
from repro.models.base import OnlineAlgorithm


class Greedy3(OnlineAlgorithm):
    """First-fit greedy 3-colorer, used as a harmless victim."""

    name = "greedy3"

    def step(self, view, target):
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in (1, 2, 3):
            if color not in used:
                return {target: color}
        return {target: 1}


def make_instance(locality=1):
    return FloatingGridInstance(
        Greedy3(), locality=locality, num_colors=3, declared_n=10 ** 6
    )


class TestFragmentPhase:
    def test_reveal_builds_diamond_view(self):
        inst = make_instance(locality=2)
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        # |B((0,0),2)| in Z^2 is 13.
        assert inst.tracker.view_graph.num_nodes == 13

    def test_fragments_stay_disconnected_in_view(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        # Two 5-node diamonds, no cross edges.
        assert inst.tracker.view_graph.num_nodes == 10
        assert inst.tracker.view_graph.num_edges == 8

    def test_colors_queryable(self):
        inst = make_instance()
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        assert inst.fragment_color(frag, (0, 0)) in (1, 2, 3)
        assert inst.fragment_color(frag, (1, 0)) is None

    def test_row_extent(self):
        inst = make_instance(locality=2)
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        inst.reveal(frag, (5, 0))
        assert inst.fragment_row_extent(frag) == (-2, 7)


class TestMerge:
    def test_legal_merge_and_gap_fill(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        # a's seen row extent is [-1, 1]; placing b's (0,0) at x=4 puts
        # b's extent at [3, 5]: gap 2.
        inst.merge(a, b, dx=4, dy=0)
        inst.reveal(a, (2, 0))  # gap node; its ball touches both regions
        assert inst.fragment_color(a, (4, 0)) in (1, 2, 3)

    def test_overlapping_merge_rejected(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        with pytest.raises(ConsistencyError, match="distance 1"):
            inst.merge(a, b, dx=2, dy=0)  # extents [-1,1] and [1,3] touch

    def test_adjacent_merge_rejected(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        with pytest.raises(ConsistencyError):
            inst.merge(a, b, dx=3, dy=0)  # extents [-1,1],[2,4]: distance 1

    def test_reflected_merge(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        inst.reveal(b, (1, 0))
        # Reflecting b maps x -> dx - x; b's extent [-1, 2] maps under
        # dx=6 to [4, 7]: gap 2 from a's [-1, 1].
        inst.merge(a, b, dx=6, dy=0, reflect=True)
        # b's node (1,0) now sits at x=5.
        color_b1 = inst.tracker.colors[
            inst.tracker.reveal_sequence[2]
        ]  # third reveal was b's (1,0)
        assert inst.fragment_color(a, (5, 0)) == color_b1

    def test_merged_fragment_is_dead(self):
        inst = make_instance()
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        inst.merge(a, b, dx=10, dy=0)
        with pytest.raises(Exception):
            inst.reveal(b, (1, 0))

    def test_merge_self_rejected(self):
        inst = make_instance()
        a = inst.new_fragment()
        inst.reveal(a, (0, 0))
        with pytest.raises(ValueError):
            inst.merge(a, a, dx=10, dy=0)


class TestCommitAndAudit:
    def test_commit_builds_host_with_margin(self):
        inst = make_instance(locality=2)
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        host = inst.commit()
        # Seen bbox is 5x5 (diamond extent), margin 2 on each side.
        assert host.rows == 9
        assert host.cols == 9

    def test_commit_stacks_unmerged_fragments(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        inst.commit()
        inst.audit()  # stacked placement must replay consistently

    def test_reveal_after_commit(self):
        inst = make_instance(locality=1)
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        inst.commit()
        inst.reveal_committed((1, 0))
        assert inst.color_at((1, 0)) in (1, 2, 3)
        inst.audit()

    def test_audit_passes_after_honest_game(self):
        inst = make_instance(locality=1)
        a, b = inst.new_fragment(), inst.new_fragment()
        inst.reveal(a, (0, 0))
        inst.reveal(b, (0, 0))
        inst.merge(a, b, dx=4, dy=0)
        inst.reveal(a, (2, 0))
        inst.commit()
        inst.reveal_committed((3, 0))
        inst.audit()

    def test_audit_detects_tampered_log(self):
        inst = make_instance(locality=1)
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        inst.reveal(frag, (4, 0))
        inst.commit()
        target, fresh = inst._log[1]
        inst._log[1] = (target, frozenset(list(fresh)[:-1]))
        with pytest.raises(ConsistencyError):
            inst.audit()

    def test_no_fragments_after_commit(self):
        inst = make_instance()
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        inst.commit()
        with pytest.raises(ConsistencyError):
            inst.new_fragment()
        with pytest.raises(ConsistencyError):
            inst.commit()

    def test_coloring_requires_commit(self):
        inst = make_instance()
        frag = inst.new_fragment()
        inst.reveal(frag, (0, 0))
        with pytest.raises(ConsistencyError):
            inst.coloring()


def test_commit_reference_frame_choice():
    """commit(reference=...) anchors the host frame on the chosen
    fragment even when lower-numbered stray fragments are still alive —
    the regression behind the randomized-victim Theorem 1 failure."""
    inst = make_instance(locality=1)
    stray = inst.new_fragment()
    inst.reveal(stray, (0, 0))
    main = inst.new_fragment()
    inst.reveal(main, (0, 0))
    color = inst.fragment_color(main, (0, 0))
    inst.commit(reference=main)
    # (0, 0) in the reference frame must resolve to the main fragment's
    # node, not the stray's.
    assert inst.color_at((0, 0)) == color
    inst.audit()


def test_commit_reference_must_be_alive():
    inst = make_instance()
    frag = inst.new_fragment()
    inst.reveal(frag, (0, 0))
    with pytest.raises(ConsistencyError, match="not alive"):
        inst.commit(reference=99)
